"""Concrete machine instances.

:func:`phytium2000plus` encodes the Phytium 2000+ (FT-2000+/64) parameters
the paper reports in Section II-A:

* 64 ARMv8 "Xiaomi" cores at 2.2 GHz in eight panels of eight cores;
* 4-decode/4-dispatch out-of-order core, 160-entry ROB;
* scheduling queues 2x Integer/SIMD, 1x FP/SIMD (FMA-capable), 1x Load/Store
  backed by two load units;
* 32 x 128-bit vector registers;
* private 32 KB L1D (LRU), 2 MB L2 shared by four cores (non-LRU);
* peak 563.2 GFLOPS double precision = 64 cores x 2.2 GHz x 4 DP flops/cycle.

The DP peak pins down one 128-bit FMA pipe per core (2 DP lanes x 2 flops),
hence ``ports['fma'] = 1``; single precision doubles the lane count, giving
8 SP flops/cycle/core and 1126.4 GFLOPS chip-wide.

:func:`a64fx_like` is a second instance used only by sensitivity ablations;
it is *not* a faithful A64FX model (no SVE), just a wider-vector data point.
:func:`big_little_like` and :func:`sve512_like` exercise the core-class
machinery: an asymmetric 4+4 socket (weighted strip partitioning) and a
512-bit SVE-class part with Phytium-style memory (per-class tile design).
"""

from __future__ import annotations

from dataclasses import replace

from .config import CacheConfig, CoreClass, CoreConfig, MachineConfig, NumaConfig


def phytium2000plus() -> MachineConfig:
    """The Phytium 2000+ machine model used for every paper experiment."""
    core = CoreConfig(
        name="xiaomi-armv8",
        freq_hz=2.2e9,
        dispatch_width=4,
        rob_entries=160,
        ports={"fma": 1, "alu": 2, "load": 2, "store": 1, "branch": 1},
        latencies={
            "fma": 5,
            "fmul": 5,
            "fadd": 4,
            "alu": 1,
            "load": 3,
            "store": 1,
            "branch": 1,
            "dup": 3,
        },
        vector_registers=32,
        vector_bits=128,
        scalar_registers=31,
        icache_bytes=32 * 1024,
    )
    l1d = CacheConfig(
        name="L1D",
        size_bytes=32 * 1024,
        line_bytes=64,
        associativity=4,
        shared_by=1,
        replacement="lru",
        hit_latency=3,
    )
    l2 = CacheConfig(
        name="L2",
        size_bytes=2 * 1024 * 1024,
        line_bytes=64,
        associativity=16,
        shared_by=4,
        replacement="random",
        hit_latency=40,
    )
    numa = NumaConfig(
        panels=8,
        cores_per_panel=8,
        local_dram_latency=150,
        remote_factor=1.8,
        barrier_stage_cycles=450,
    )
    return MachineConfig(core=core, l1d=l1d, l2=l2, numa=numa, name="phytium-2000+")


def graviton2_like() -> MachineConfig:
    """A Neoverse-N1-class 64-core data point (cloud ARM server).

    Same NEON width as Phytium 2000+ but two FMA pipes, a private (LRU)
    L2 per core and far more DRAM bandwidth — the configuration ablations
    use it to ask which Phytium conclusions are microarchitectural and
    which come from the memory system.
    """
    core = CoreConfig(
        name="neoverse-n1-like",
        freq_hz=2.5e9,
        dispatch_width=4,
        rob_entries=128,
        ports={"fma": 2, "alu": 3, "load": 2, "store": 1, "branch": 1},
        latencies={
            "fma": 4,
            "fmul": 4,
            "fadd": 3,
            "alu": 1,
            "load": 4,
            "store": 1,
            "branch": 1,
            "dup": 3,
        },
        vector_registers=32,
        vector_bits=128,
        scalar_registers=31,
        scheduler_window=40,
        icache_bytes=64 * 1024,
    )
    l1d = CacheConfig(
        name="L1D",
        size_bytes=64 * 1024,
        line_bytes=64,
        associativity=4,
        shared_by=1,
        replacement="lru",
        hit_latency=4,
    )
    l2 = CacheConfig(
        name="L2",
        size_bytes=1024 * 1024,
        line_bytes=64,
        associativity=8,
        shared_by=1,
        replacement="lru",
        hit_latency=11,
    )
    numa = NumaConfig(
        panels=1,
        cores_per_panel=64,
        local_dram_latency=100,
        remote_factor=1.0,
        barrier_stage_cycles=250,
        dram_bytes_per_cycle=80.0,  # 8-channel DDR4-3200 shared chip-wide
    )
    return MachineConfig(core=core, l1d=l1d, l2=l2, numa=numa,
                         name="graviton2-like")


def a64fx_like() -> MachineConfig:
    """A wider-SIMD many-core data point for sensitivity ablations.

    512-bit vectors, two FMA pipes, 48 cores in four groups — enough to ask
    "do the paper's SMM conclusions survive a wider vector unit?", and
    nothing more.
    """
    core = CoreConfig(
        name="a64fx-like",
        freq_hz=2.0e9,
        dispatch_width=4,
        rob_entries=128,
        ports={"fma": 2, "alu": 2, "load": 2, "store": 1, "branch": 1},
        latencies={
            "fma": 9,
            "fmul": 9,
            "fadd": 5,
            "alu": 1,
            "load": 5,
            "store": 1,
            "branch": 1,
            "dup": 4,
        },
        vector_registers=32,
        vector_bits=512,
        scalar_registers=31,
        icache_bytes=64 * 1024,
    )
    l1d = CacheConfig(
        name="L1D",
        size_bytes=64 * 1024,
        line_bytes=256,
        associativity=4,
        shared_by=1,
        replacement="lru",
        hit_latency=5,
    )
    l2 = CacheConfig(
        name="L2",
        size_bytes=8 * 1024 * 1024,
        line_bytes=256,
        associativity=16,
        shared_by=12,
        replacement="lru",
        hit_latency=37,
    )
    numa = NumaConfig(
        panels=4,
        cores_per_panel=12,
        local_dram_latency=120,
        remote_factor=1.5,
        barrier_stage_cycles=100,
        dram_bytes_per_cycle=128.0,  # HBM-class per-group bandwidth
    )
    return MachineConfig(core=core, l1d=l1d, l2=l2, numa=numa, name="a64fx-like")


def big_little_like() -> MachineConfig:
    """An asymmetric 4+4 big.LITTLE socket (DynamIQ-style client part).

    Four wide out-of-order cores (two FMA pipes, 2.6 GHz, 64 KB L1D)
    plus four narrow in-order-ish cores (one FMA pipe, 1.8 GHz, 32 KB
    L1D, half the L2).  One core of the big class sustains ~2.9x the
    fp32 throughput of a little core, so an even M-strip partition
    leaves the big cluster idle waiting at the barrier — the machine
    the weighted partitioner exists for.
    """
    big = CoreConfig(
        name="big-ooo-armv8",
        freq_hz=2.6e9,
        dispatch_width=4,
        rob_entries=160,
        ports={"fma": 2, "alu": 3, "load": 2, "store": 1, "branch": 1},
        latencies={
            "fma": 4,
            "fmul": 4,
            "fadd": 3,
            "alu": 1,
            "load": 4,
            "store": 1,
            "branch": 1,
            "dup": 3,
        },
        vector_registers=32,
        vector_bits=128,
        scalar_registers=31,
        scheduler_window=40,
        icache_bytes=64 * 1024,
    )
    little = CoreConfig(
        name="little-armv8",
        freq_hz=1.8e9,
        dispatch_width=2,
        rob_entries=64,
        ports={"fma": 1, "alu": 2, "load": 1, "store": 1, "branch": 1},
        latencies={
            "fma": 5,
            "fmul": 5,
            "fadd": 4,
            "alu": 1,
            "load": 3,
            "store": 1,
            "branch": 1,
            "dup": 3,
        },
        vector_registers=32,
        vector_bits=128,
        scalar_registers=31,
        scheduler_window=16,
        icache_bytes=32 * 1024,
    )
    big_l1d = CacheConfig(
        name="L1D",
        size_bytes=64 * 1024,
        line_bytes=64,
        associativity=4,
        shared_by=1,
        replacement="lru",
        hit_latency=4,
    )
    little_l1d = replace(big_l1d, size_bytes=32 * 1024, hit_latency=3)
    big_l2 = CacheConfig(
        name="L2",
        size_bytes=2 * 1024 * 1024,
        line_bytes=64,
        associativity=16,
        shared_by=4,
        replacement="lru",
        hit_latency=12,
    )
    little_l2 = replace(big_l2, size_bytes=1024 * 1024, hit_latency=15)
    numa = NumaConfig(
        panels=1,
        cores_per_panel=8,
        local_dram_latency=130,
        remote_factor=1.0,
        barrier_stage_cycles=200,
        dram_bytes_per_cycle=25.0,  # LPDDR-class shared bandwidth
    )
    return MachineConfig(
        core=big,
        l1d=big_l1d,
        l2=big_l2,
        numa=numa,
        name="big-little-like",
        core_classes=(
            CoreClass(core=big, count=4, l1d=big_l1d, l2=big_l2),
            CoreClass(core=little, count=4, l1d=little_l1d, l2=little_l2),
        ),
    )


def sve512_like() -> MachineConfig:
    """A 512-bit SVE-class part on Phytium-style memory.

    One core class, but declared through the class machinery: sixteen
    2.0 GHz cores with 512-bit vectors (16 fp32 lanes) over the same
    cluster-shared-L2 topology as the Phytium.  Exists to check the
    per-class tile designer: the tuner must select wider micro-kernel
    tiles here than on any 128-bit NEON machine through the exact same
    search path.
    """
    core = CoreConfig(
        name="sve512-armv8",
        freq_hz=2.0e9,
        dispatch_width=4,
        rob_entries=160,
        ports={"fma": 2, "alu": 2, "load": 2, "store": 1, "branch": 1},
        latencies={
            "fma": 6,
            "fmul": 6,
            "fadd": 4,
            "alu": 1,
            "load": 4,
            "store": 1,
            "branch": 1,
            "dup": 3,
        },
        vector_registers=32,
        vector_bits=512,
        scalar_registers=31,
        scheduler_window=40,
        icache_bytes=64 * 1024,
    )
    l1d = CacheConfig(
        name="L1D",
        size_bytes=64 * 1024,
        line_bytes=64,
        associativity=4,
        shared_by=1,
        replacement="lru",
        hit_latency=4,
    )
    l2 = CacheConfig(
        name="L2",
        size_bytes=4 * 1024 * 1024,
        line_bytes=64,
        associativity=16,
        shared_by=4,
        replacement="lru",
        hit_latency=30,
    )
    numa = NumaConfig(
        panels=2,
        cores_per_panel=8,
        local_dram_latency=140,
        remote_factor=1.5,
        barrier_stage_cycles=300,
        dram_bytes_per_cycle=40.0,
    )
    return MachineConfig(
        core=core,
        l1d=l1d,
        l2=l2,
        numa=numa,
        name="sve512-like",
        core_classes=(CoreClass(core=core, count=16, l1d=l1d, l2=l2),),
    )
