"""Persistent, versioned tuning cache with an in-memory LRU front.

IAAT-style input-aware tuning only pays off when decisions persist: the
search runs once per (shape bucket, machine, code version) and every later
call is a table lookup.  :class:`TuningCache` implements that table:

* **shape bucketing** — exact keys in the SMM regime (dimensions <= 64),
  coarser buckets beyond it, so nearby large shapes share one entry;
* **machine fingerprinting** — the on-disk file is keyed by a hash of the
  full machine configuration, the dtype and the tuning schema/code
  version; any mismatch invalidates the whole file (a tuned plan for the
  wrong register file or NUMA layout is worse than no plan);
* **an LRU front** — hot entries are served from a bounded in-memory map
  without touching disk; the JSON file is only read once and written
  atomically (temp file + rename).

Two extensions serve the planning service (:mod:`repro.serving`):

* :class:`ShardedTuningCache` — the same table split into N shards keyed
  by a stable hash of the bucketed shape token, each shard with its own
  LRU map and its own lock, so concurrent readers of different shards
  never contend on a global lock.  The on-disk format is identical to
  :class:`TuningCache` (shard count is a purely in-memory property), so
  single-shard and sharded caches interoperate freely.
* :func:`merge_payload` — cache federation: fold an exported cache file
  into a live cache under a machine-fingerprint guard, keeping the
  better modeled-cost entry on key collisions (``repro tune merge``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import numpy as np

from ..machine.config import MachineConfig
from ..util.errors import ConfigError
from ..util.validation import ceil_div, check_positive_int
from .plan import PlanKey, TunedPlan

#: bump when the plan schema or the cost models change incompatibly
TUNING_SCHEMA_VERSION = 1

#: default on-disk location (overridable per cache / via the CLI)
DEFAULT_CACHE_PATH = ".repro_tuning_cache.json"

#: dimensions at or below this are cached exactly (the paper's SMM regime)
EXACT_BUCKET_LIMIT = 64


def machine_fingerprint(machine: MachineConfig, dtype=np.float32) -> str:
    """Short stable hash identifying (machine config, dtype, code version).

    Built from the dataclass reprs, which cover every modeled parameter —
    change a cache size, a latency or the NUMA layout and the fingerprint
    (hence the cache) changes with it.
    """
    from .. import __version__

    payload = "|".join((
        repr(machine),
        str(np.dtype(dtype)),
        f"schema={TUNING_SCHEMA_VERSION}",
        f"code={__version__}",
    ))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def bucket_dim(x: int) -> int:
    """One dimension's bucket: exact <= 64, then 16-multiples, then 64s."""
    check_positive_int(x, "dimension", ConfigError)
    if x <= EXACT_BUCKET_LIMIT:
        return x
    if x <= 256:
        return ceil_div(x, 16) * 16
    return ceil_div(x, 64) * 64


def bucket_shape(m: int, n: int, k: int) -> tuple:
    """The (m, n, k) bucket a problem shape falls into."""
    return (bucket_dim(m), bucket_dim(n), bucket_dim(k))


def plan_key(m: int, n: int, k: int, dtype, threads: int = 1) -> PlanKey:
    """The bucketed :class:`PlanKey` for one problem instance."""
    bm, bn, bk = bucket_shape(m, n, k)
    return PlanKey(m=bm, n=bn, k=bk, dtype=str(np.dtype(dtype)),
                   threads=threads)


def shard_index(token: str, shards: int) -> int:
    """The shard one cache token lands in (stable across processes).

    CRC32 rather than ``hash()``: Python string hashing is salted per
    process (PYTHONHASHSEED), and shard placement must be deterministic
    so tests, federated caches and restarted servers agree.
    """
    return zlib.crc32(token.encode()) % shards


@dataclass
class CacheStats:
    """Hit/miss counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def requests(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests


class TuningCache:
    """Versioned on-disk plan store fronted by a bounded LRU map."""

    def __init__(
        self,
        machine: MachineConfig,
        dtype=np.float32,
        path: Optional[str] = None,
        capacity: int = 4096,
    ) -> None:
        check_positive_int(capacity, "capacity", ConfigError)
        self.machine = machine
        self.dtype = np.dtype(dtype)
        #: empty string = memory-only (pool workers, throwaway tuners)
        self.path = path if path is not None else DEFAULT_CACHE_PATH
        self.capacity = capacity
        self.fingerprint = machine_fingerprint(machine, dtype)
        self.stats = CacheStats()
        self._lru: "OrderedDict[str, TunedPlan]" = OrderedDict()
        self._loaded = False
        self._dirty = False

    # -- persistence ---------------------------------------------------

    def load(self) -> int:
        """Read the on-disk file (once); returns entries accepted.

        A version or fingerprint mismatch discards the file's entries —
        that is the invalidation path for machine-config or code changes.
        """
        if self._loaded:
            return len(self._lru)
        self._loaded = True
        if not self.path or not os.path.exists(self.path):
            return 0
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            self.stats.invalidations += 1
            return 0
        if (
            data.get("schema") != TUNING_SCHEMA_VERSION
            or data.get("fingerprint") != self.fingerprint
        ):
            self.stats.invalidations += 1
            return 0
        accepted = 0
        for token, entry in data.get("entries", {}).items():
            try:
                plan = TunedPlan.from_dict(entry, source="cache")
            except ConfigError:
                continue  # skip corrupt entries, keep the rest
            self._insert(token, plan)
            accepted += 1
        self._dirty = False
        return accepted

    def save(self) -> str:
        """Atomically write all cached entries to disk; returns the path."""
        self.load()
        if not self.path:
            self._dirty = False
            return self.path
        payload = {
            "schema": TUNING_SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "machine": self.machine.name,
            "dtype": str(self.dtype),
            "entries": {
                token: plan.to_dict() for token, plan in self._lru.items()
            },
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=1, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self._dirty = False
        return self.path

    def clear(self) -> None:
        """Drop every entry, in memory and on disk."""
        self._lru.clear()
        self._loaded = True
        self._dirty = False
        if self.path and os.path.exists(self.path):
            os.unlink(self.path)

    # -- lookup --------------------------------------------------------

    def get(self, m: int, n: int, k: int, threads: int = 1) -> Optional[TunedPlan]:
        """The cached plan for the shape's bucket, or None (counts stats)."""
        self.load()
        token = plan_key(m, n, k, self.dtype, threads).token
        plan = self._lru.get(token)
        if plan is None:
            self.stats.misses += 1
            return None
        self._lru.move_to_end(token)
        self.stats.hits += 1
        return plan

    def put(self, plan: TunedPlan) -> None:
        """Insert (or replace) the entry for the plan's key."""
        self.load()
        self._insert(plan.key.token, plan)
        self._dirty = True

    def peek(self, token: str) -> Optional[TunedPlan]:
        """The entry for one token, without counting stats or LRU bumps."""
        self.load()
        return self._lru.get(token)

    def items(self) -> List[tuple]:
        """(token, plan) pairs, coldest first (the merge/export view)."""
        self.load()
        return list(self._lru.items())

    def _insert(self, token: str, plan: TunedPlan) -> None:
        self._lru[token] = plan
        self._lru.move_to_end(token)
        while len(self._lru) > self.capacity:
            self._lru.popitem(last=False)

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        self.load()
        return len(self._lru)

    def __iter__(self) -> Iterator[TunedPlan]:
        self.load()
        return iter(list(self._lru.values()))

    @property
    def dirty(self) -> bool:
        """True when in-memory entries are newer than the on-disk file."""
        return self._dirty

    def export_json(self) -> str:
        """The full cache as pretty-printed JSON text (``tune export``)."""
        self.load()
        return json.dumps(
            {
                "schema": TUNING_SCHEMA_VERSION,
                "fingerprint": self.fingerprint,
                "machine": self.machine.name,
                "dtype": str(self.dtype),
                "entries": {
                    token: plan.to_dict()
                    for token, plan in self._lru.items()
                },
            },
            indent=1,
            sort_keys=True,
        )

    def summary(self) -> Dict[str, object]:
        """Counters for the CLI status line."""
        self.load()
        return {
            "path": self.path,
            "entries": len(self._lru),
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "hit_rate": self.stats.hit_rate,
            "invalidations": self.stats.invalidations,
            "fingerprint": self.fingerprint,
        }


# ---------------------------------------------------------------------------
# sharded cache (the planning service's hot front)
# ---------------------------------------------------------------------------


class _CacheShard:
    """One shard: an LRU map behind its own lock, with counters.

    A shard holds entries but never evicts on its own — capacity is a
    *global* property enforced by :meth:`ShardedTuningCache._admit`,
    which asks the fullest shard to :meth:`evict_oldest` until the total
    is back under the bound.
    """

    __slots__ = ("lru", "lock", "stats")

    def __init__(self) -> None:
        self.lru: "OrderedDict[str, TunedPlan]" = OrderedDict()
        self.lock = threading.Lock()
        self.stats = CacheStats()

    def get(self, token: str) -> Optional[TunedPlan]:
        with self.lock:
            plan = self.lru.get(token)
            if plan is None:
                self.stats.misses += 1
                return None
            self.lru.move_to_end(token)
            self.stats.hits += 1
            return plan

    def put(self, token: str, plan: TunedPlan) -> int:
        """Insert or replace; returns 1 when the token is new here."""
        with self.lock:
            fresh = 0 if token in self.lru else 1
            self.lru[token] = plan
            self.lru.move_to_end(token)
            return fresh

    def evict_oldest(self) -> int:
        """Drop the coldest entry; returns how many were dropped (0/1)."""
        with self.lock:
            if not self.lru:
                return 0
            self.lru.popitem(last=False)
            return 1

    def __len__(self) -> int:
        with self.lock:
            return len(self.lru)


class ShardedTuningCache:
    """A :class:`TuningCache` split into N independently-locked shards.

    Drop-in for :class:`TuningCache` everywhere the tuner and the serving
    layer touch a cache (``get``/``put``/``peek``/``save``/``summary``),
    with one structural difference: entries are distributed over
    ``shards`` LRU maps by :func:`shard_index` of their bucketed token,
    and every shard has its own lock — a read of a hot shape only ever
    contends with other traffic on the *same* shard.  The on-disk format
    (and the machine fingerprint) is bit-identical to the single-shard
    cache regardless of shard count, so files can be exported, merged and
    re-loaded across shard configurations freely.

    **Capacity is global.**  The configured ``capacity`` bounds the total
    residency across all shards: inserts update a shared entry counter
    (one short critical section on ``_size_lock``, separate from every
    shard lock), and when the total exceeds the bound the coldest entry
    of the *fullest* shard is evicted until it does not.  Hash skew
    therefore never triggers premature eviction, and total occupancy
    never exceeds ``capacity`` — the pre-1.7 per-shard split (which could
    both evict early on hot shards and overshoot the bound by up to
    ``shards - 1`` entries) is what the V505 audit rule flags on live
    caches.  Reads (``get``/``peek``) still touch only their own shard's
    lock, never the counter.
    """

    def __init__(
        self,
        machine: MachineConfig,
        dtype=np.float32,
        path: Optional[str] = None,
        capacity: int = 4096,
        shards: int = 8,
    ) -> None:
        check_positive_int(capacity, "capacity", ConfigError)
        check_positive_int(shards, "shards", ConfigError)
        self.machine = machine
        self.dtype = np.dtype(dtype)
        self.path = path if path is not None else DEFAULT_CACHE_PATH
        self.capacity = capacity
        self.fingerprint = machine_fingerprint(machine, dtype)
        self._shards: List[_CacheShard] = [
            _CacheShard() for _ in range(shards)
        ]
        #: total resident entries, maintained under ``_size_lock`` so the
        #: global capacity bound never needs a sweep over shard locks
        self._size = 0
        self._size_lock = threading.Lock()
        self._loaded = False
        self._load_lock = threading.Lock()
        self._dirty = False
        #: invalidations are a cache-wide event, not a shard event
        self._invalidations = 0

    @property
    def shard_count(self) -> int:
        """Number of shards."""
        return len(self._shards)

    def shard_of(self, token: str) -> int:
        """Which shard a token lives in (stable across processes)."""
        return shard_index(token, len(self._shards))

    # -- persistence ---------------------------------------------------

    def load(self) -> int:
        """Read the on-disk file once; same invalidation rules as
        :meth:`TuningCache.load`, entries scattered to their shards."""
        self._ensure_loaded()
        return sum(len(shard) for shard in self._shards)

    def _ensure_loaded(self) -> None:
        """One-time disk read; the fast path is a single flag check.

        Hot-path operations (``get``/``put``/``peek``) call this instead
        of :meth:`load` — computing the entry count would touch every
        shard's lock, which is exactly the global contention sharding
        exists to avoid.
        """
        if self._loaded:
            return
        with self._load_lock:
            if not self._loaded:
                self._load_locked()
                self._loaded = True

    def _load_locked(self) -> int:
        if not self.path or not os.path.exists(self.path):
            return 0
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            self._invalidations += 1
            return 0
        if (
            data.get("schema") != TUNING_SCHEMA_VERSION
            or data.get("fingerprint") != self.fingerprint
        ):
            self._invalidations += 1
            return 0
        accepted = 0
        for token, entry in data.get("entries", {}).items():
            try:
                plan = TunedPlan.from_dict(entry, source="cache")
            except ConfigError:
                continue
            self._admit(token, plan)
            accepted += 1
        self._dirty = False
        return accepted

    def _admit(self, token: str, plan: TunedPlan) -> None:
        """Insert one entry and enforce the *global* capacity bound.

        Lock order: the inserting shard's lock is taken and released
        inside :meth:`_CacheShard.put` before ``_size_lock`` is
        acquired; eviction then takes one shard lock at a time while
        holding ``_size_lock``.  No code path acquires ``_size_lock``
        while holding a shard lock, so the order cannot cycle.
        """
        fresh = self._shards[self.shard_of(token)].put(token, plan)
        if not fresh:
            return
        with self._size_lock:
            self._size += fresh
            while self._size > self.capacity:
                victim = max(self._shards, key=len)
                evicted = victim.evict_oldest()
                if not evicted:
                    # counter drift (cannot happen under the lock order
                    # above, but never spin): recount and stop
                    self._size = sum(len(s) for s in self._shards)
                    break
                self._size -= evicted

    def _payload(self) -> Dict[str, object]:
        return {
            "schema": TUNING_SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "machine": self.machine.name,
            "dtype": str(self.dtype),
            "entries": {
                token: plan.to_dict() for token, plan in self.items()
            },
        }

    def save(self) -> str:
        """Atomically write every shard's entries to one file."""
        self.load()
        if not self.path:
            self._dirty = False
            return self.path
        payload = self._payload()
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=1, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self._dirty = False
        return self.path

    def clear(self) -> None:
        """Drop every entry, in memory and on disk."""
        for shard in self._shards:
            with shard.lock:
                shard.lru.clear()
        with self._size_lock:
            self._size = 0
        with self._load_lock:
            self._loaded = True
        self._dirty = False
        if self.path and os.path.exists(self.path):
            os.unlink(self.path)

    def export_json(self) -> str:
        """The full cache as pretty-printed JSON (``tune export`` format)."""
        self.load()
        return json.dumps(self._payload(), indent=1, sort_keys=True)

    # -- lookup --------------------------------------------------------

    def get(self, m: int, n: int, k: int, threads: int = 1) -> Optional[TunedPlan]:
        """The cached plan for the shape's bucket, or None (per-shard stats).

        Lock scope is a single shard: a miss or hit here never blocks
        concurrent lookups that hash to other shards.
        """
        self._ensure_loaded()
        token = plan_key(m, n, k, self.dtype, threads).token
        return self._shards[self.shard_of(token)].get(token)

    def put(self, plan: TunedPlan) -> None:
        """Insert (or replace) the entry for the plan's key."""
        self._ensure_loaded()
        self._admit(plan.key.token, plan)
        self._dirty = True

    def peek(self, token: str) -> Optional[TunedPlan]:
        """Entry for one token without stats or LRU movement."""
        self._ensure_loaded()
        shard = self._shards[self.shard_of(token)]
        with shard.lock:
            return shard.lru.get(token)

    def items(self) -> List[tuple]:
        """(token, plan) pairs across all shards (merge/export view)."""
        self._ensure_loaded()
        out: List[tuple] = []
        for shard in self._shards:
            with shard.lock:
                out.extend(shard.lru.items())
        return out

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        self.load()
        return sum(len(shard) for shard in self._shards)

    def __iter__(self) -> Iterator[TunedPlan]:
        return iter([plan for _, plan in self.items()])

    @property
    def dirty(self) -> bool:
        """True when in-memory entries are newer than the on-disk file."""
        return self._dirty

    @property
    def stats(self) -> CacheStats:
        """Aggregated hit/miss counters across every shard."""
        total = CacheStats(invalidations=self._invalidations)
        for shard in self._shards:
            total.hits += shard.stats.hits
            total.misses += shard.stats.misses
        return total

    def per_shard_occupancy(self) -> List[Dict[str, object]]:
        """Entry/hit/miss counts per shard (the ``--stats`` breakdown)."""
        out = []
        for idx, shard in enumerate(self._shards):
            with shard.lock:
                out.append({
                    "shard": idx,
                    "entries": len(shard.lru),
                    "hits": shard.stats.hits,
                    "misses": shard.stats.misses,
                })
        return out

    def summary(self) -> Dict[str, object]:
        """Counters for the CLI status line (plus the shard breakdown)."""
        self.load()
        stats = self.stats
        return {
            "path": self.path,
            "entries": len(self),
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_rate": stats.hit_rate,
            "invalidations": stats.invalidations,
            "fingerprint": self.fingerprint,
            "shards": self.shard_count,
            "per_shard": [len(shard) for shard in self._shards],
        }


# ---------------------------------------------------------------------------
# cache federation (``repro tune merge``)
# ---------------------------------------------------------------------------


@dataclass
class MergeReport:
    """Outcome of folding one exported cache payload into a live cache."""

    source: str = ""
    #: fingerprint of the payload (vs the destination cache's)
    fingerprint: str = ""
    fingerprint_matched: bool = True
    examined: int = 0
    #: new tokens accepted into the destination
    added: int = 0
    #: collisions where the payload entry had the better modeled cost
    improved: int = 0
    #: collisions where the destination entry was already at least as good
    kept: int = 0
    #: malformed entries skipped
    corrupt: int = 0

    def render(self) -> str:
        """One-line summary for the CLI."""
        guard = "" if self.fingerprint_matched else " [fingerprint mismatch]"
        return (
            f"{self.source or 'payload'}{guard}: {self.examined} entries — "
            f"{self.added} added, {self.improved} improved, "
            f"{self.kept} kept, {self.corrupt} corrupt"
        )


def read_cache_payload(path: str) -> Dict:
    """Parse one exported cache file (``tune export`` / on-disk format)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"unreadable cache file {path!r}: {exc}") from exc
    if not isinstance(data, dict) or "entries" not in data:
        raise ConfigError(f"{path!r} is not an exported tuning cache")
    return data


def merge_payload(cache, payload: Dict, force: bool = False,
                  source: str = "") -> MergeReport:
    """Fold an exported cache payload into ``cache`` (federation).

    Guards: the payload's schema version must match exactly, and its
    machine fingerprint must match the destination cache's unless
    ``force`` — plans tuned for a different machine model, dtype or code
    version are refused rather than silently mixed in.  On key
    collisions the entry with the *lower modeled total cycles* wins, so
    a merged cache never serves a plan worse than either input held for
    that key.
    """
    schema = payload.get("schema")
    if schema != TUNING_SCHEMA_VERSION:
        raise ConfigError(
            f"cache schema {schema!r} != {TUNING_SCHEMA_VERSION} "
            f"(re-export with this code version)"
        )
    report = MergeReport(
        source=source,
        fingerprint=str(payload.get("fingerprint", "")),
        fingerprint_matched=payload.get("fingerprint") == cache.fingerprint,
    )
    if not report.fingerprint_matched and not force:
        raise ConfigError(
            f"machine fingerprint mismatch: payload "
            f"{report.fingerprint or '<missing>'} vs cache "
            f"{cache.fingerprint} (pass --force to merge anyway)"
        )
    for token, entry in payload.get("entries", {}).items():
        report.examined += 1
        try:
            plan = TunedPlan.from_dict(entry, source="cache")
        except ConfigError:
            report.corrupt += 1
            continue
        existing = cache.peek(token)
        if existing is None:
            cache.put(plan)
            report.added += 1
        elif plan.total_cycles < existing.total_cycles:
            cache.put(plan)
            report.improved += 1
        else:
            report.kept += 1
    return report


def merge_cache_files(cache, paths, force: bool = False) -> List[MergeReport]:
    """Merge several exported cache files into ``cache``, in order."""
    return [
        merge_payload(cache, read_cache_payload(path), force=force,
                      source=path)
        for path in paths
    ]
