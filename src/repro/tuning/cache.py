"""Persistent, versioned tuning cache with an in-memory LRU front.

IAAT-style input-aware tuning only pays off when decisions persist: the
search runs once per (shape bucket, machine, code version) and every later
call is a table lookup.  :class:`TuningCache` implements that table:

* **shape bucketing** — exact keys in the SMM regime (dimensions <= 64),
  coarser buckets beyond it, so nearby large shapes share one entry;
* **machine fingerprinting** — the on-disk file is keyed by a hash of the
  full machine configuration, the dtype and the tuning schema/code
  version; any mismatch invalidates the whole file (a tuned plan for the
  wrong register file or NUMA layout is worse than no plan);
* **an LRU front** — hot entries are served from a bounded in-memory map
  without touching disk; the JSON file is only read once and written
  atomically (temp file + rename).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

import numpy as np

from ..machine.config import MachineConfig
from ..util.errors import ConfigError
from ..util.validation import ceil_div, check_positive_int
from .plan import PlanKey, TunedPlan

#: bump when the plan schema or the cost models change incompatibly
TUNING_SCHEMA_VERSION = 1

#: default on-disk location (overridable per cache / via the CLI)
DEFAULT_CACHE_PATH = ".repro_tuning_cache.json"

#: dimensions at or below this are cached exactly (the paper's SMM regime)
EXACT_BUCKET_LIMIT = 64


def machine_fingerprint(machine: MachineConfig, dtype=np.float32) -> str:
    """Short stable hash identifying (machine config, dtype, code version).

    Built from the dataclass reprs, which cover every modeled parameter —
    change a cache size, a latency or the NUMA layout and the fingerprint
    (hence the cache) changes with it.
    """
    from .. import __version__

    payload = "|".join((
        repr(machine),
        str(np.dtype(dtype)),
        f"schema={TUNING_SCHEMA_VERSION}",
        f"code={__version__}",
    ))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def bucket_dim(x: int) -> int:
    """One dimension's bucket: exact <= 64, then 16-multiples, then 64s."""
    check_positive_int(x, "dimension", ConfigError)
    if x <= EXACT_BUCKET_LIMIT:
        return x
    if x <= 256:
        return ceil_div(x, 16) * 16
    return ceil_div(x, 64) * 64


def bucket_shape(m: int, n: int, k: int) -> tuple:
    """The (m, n, k) bucket a problem shape falls into."""
    return (bucket_dim(m), bucket_dim(n), bucket_dim(k))


def plan_key(m: int, n: int, k: int, dtype, threads: int = 1) -> PlanKey:
    """The bucketed :class:`PlanKey` for one problem instance."""
    bm, bn, bk = bucket_shape(m, n, k)
    return PlanKey(m=bm, n=bn, k=bk, dtype=str(np.dtype(dtype)),
                   threads=threads)


@dataclass
class CacheStats:
    """Hit/miss counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def requests(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests


class TuningCache:
    """Versioned on-disk plan store fronted by a bounded LRU map."""

    def __init__(
        self,
        machine: MachineConfig,
        dtype=np.float32,
        path: Optional[str] = None,
        capacity: int = 4096,
    ) -> None:
        check_positive_int(capacity, "capacity", ConfigError)
        self.machine = machine
        self.dtype = np.dtype(dtype)
        #: empty string = memory-only (pool workers, throwaway tuners)
        self.path = path if path is not None else DEFAULT_CACHE_PATH
        self.capacity = capacity
        self.fingerprint = machine_fingerprint(machine, dtype)
        self.stats = CacheStats()
        self._lru: "OrderedDict[str, TunedPlan]" = OrderedDict()
        self._loaded = False
        self._dirty = False

    # -- persistence ---------------------------------------------------

    def load(self) -> int:
        """Read the on-disk file (once); returns entries accepted.

        A version or fingerprint mismatch discards the file's entries —
        that is the invalidation path for machine-config or code changes.
        """
        if self._loaded:
            return len(self._lru)
        self._loaded = True
        if not self.path or not os.path.exists(self.path):
            return 0
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            self.stats.invalidations += 1
            return 0
        if (
            data.get("schema") != TUNING_SCHEMA_VERSION
            or data.get("fingerprint") != self.fingerprint
        ):
            self.stats.invalidations += 1
            return 0
        accepted = 0
        for token, entry in data.get("entries", {}).items():
            try:
                plan = TunedPlan.from_dict(entry, source="cache")
            except ConfigError:
                continue  # skip corrupt entries, keep the rest
            self._insert(token, plan)
            accepted += 1
        self._dirty = False
        return accepted

    def save(self) -> str:
        """Atomically write all cached entries to disk; returns the path."""
        self.load()
        if not self.path:
            self._dirty = False
            return self.path
        payload = {
            "schema": TUNING_SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "machine": self.machine.name,
            "dtype": str(self.dtype),
            "entries": {
                token: plan.to_dict() for token, plan in self._lru.items()
            },
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=1, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self._dirty = False
        return self.path

    def clear(self) -> None:
        """Drop every entry, in memory and on disk."""
        self._lru.clear()
        self._loaded = True
        self._dirty = False
        if self.path and os.path.exists(self.path):
            os.unlink(self.path)

    # -- lookup --------------------------------------------------------

    def get(self, m: int, n: int, k: int, threads: int = 1) -> Optional[TunedPlan]:
        """The cached plan for the shape's bucket, or None (counts stats)."""
        self.load()
        token = plan_key(m, n, k, self.dtype, threads).token
        plan = self._lru.get(token)
        if plan is None:
            self.stats.misses += 1
            return None
        self._lru.move_to_end(token)
        self.stats.hits += 1
        return plan

    def put(self, plan: TunedPlan) -> None:
        """Insert (or replace) the entry for the plan's key."""
        self.load()
        self._insert(plan.key.token, plan)
        self._dirty = True

    def _insert(self, token: str, plan: TunedPlan) -> None:
        self._lru[token] = plan
        self._lru.move_to_end(token)
        while len(self._lru) > self.capacity:
            self._lru.popitem(last=False)

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        self.load()
        return len(self._lru)

    def __iter__(self) -> Iterator[TunedPlan]:
        self.load()
        return iter(list(self._lru.values()))

    @property
    def dirty(self) -> bool:
        """True when in-memory entries are newer than the on-disk file."""
        return self._dirty

    def export_json(self) -> str:
        """The full cache as pretty-printed JSON text (``tune export``)."""
        self.load()
        return json.dumps(
            {
                "schema": TUNING_SCHEMA_VERSION,
                "fingerprint": self.fingerprint,
                "machine": self.machine.name,
                "dtype": str(self.dtype),
                "entries": {
                    token: plan.to_dict()
                    for token, plan in self._lru.items()
                },
            },
            indent=1,
            sort_keys=True,
        )

    def summary(self) -> Dict[str, object]:
        """Counters for the CLI status line."""
        self.load()
        return {
            "path": self.path,
            "entries": len(self._lru),
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "hit_rate": self.stats.hit_rate,
            "invalidations": self.stats.invalidations,
            "fingerprint": self.fingerprint,
        }
