"""Parallel tuning-cache warm-up (the ``repro tune warm`` engine).

A full M/N/K sweep warm-up tunes dozens to hundreds of independent shape
buckets; each bucket's candidate search is CPU-bound (kernel scheduling),
so the warm-up fans shapes out across a :class:`ProcessPoolExecutor`.
Workers build one tuner per process (machines are reconstructed by name —
configs travel as registry keys, not pickles of live model state), tune
with the cache bypassed, and return plain plan dictionaries; the parent
merges them into the persistent cache and saves once, atomically.  Any
pool failure degrades to the serial path — warm-up is an optimization,
never a correctness dependency.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..machine import (
    a64fx_like,
    big_little_like,
    graviton2_like,
    phytium2000plus,
    sve512_like,
)
from ..util.errors import ConfigError, ReproError
from .cache import TuningCache, plan_key
from .plan import TunedPlan
from .tuner import AdaptiveTuner, TuneReport

Shape = Tuple[int, int, int]

#: machine factories addressable by name (what travels to pool workers)
MACHINE_FACTORIES = {
    "phytium2000plus": phytium2000plus,
    "graviton2_like": graviton2_like,
    "a64fx_like": a64fx_like,
    "big_little_like": big_little_like,
    "sve512_like": sve512_like,
}


def machine_by_name(name: str):
    """Construct a registered machine model by factory name."""
    try:
        return MACHINE_FACTORIES[name]()
    except KeyError:
        raise ConfigError(
            f"unknown machine {name!r}; known: {sorted(MACHINE_FACTORIES)}"
        ) from None


# -- pool worker (module-level so it pickles) --------------------------

_WORKER_TUNER: Optional[AdaptiveTuner] = None


def _pool_init(machine_name: str, dtype_name: str) -> None:
    """Build this worker process's tuner once (no disk cache attached)."""
    global _WORKER_TUNER
    machine = machine_by_name(machine_name)
    _WORKER_TUNER = AdaptiveTuner(
        machine, np.dtype(dtype_name),
        cache=TuningCache(machine, np.dtype(dtype_name), path=""),
    )


def _tune_one(job: Tuple[Shape, int]) -> Optional[Dict]:
    """Tune one shape in a pool worker; returns the plan as a dict."""
    (m, n, k), threads = job
    try:
        return _WORKER_TUNER.tune(m, n, k, threads=threads,
                                  use_cache=False).to_dict()
    except ReproError:
        return None


# -- parent-side warm-up ----------------------------------------------


def default_jobs(n_shapes: int) -> int:
    """Worker count: bounded by shapes, cores and a sanity cap."""
    return max(1, min(n_shapes, os.cpu_count() or 1, 8))


def warm_cache(
    tuner: AdaptiveTuner,
    shapes: Sequence[Shape],
    threads: int = 1,
    jobs: Optional[int] = None,
    machine_name: Optional[str] = None,
) -> TuneReport:
    """Tune every uncached shape, fanning out across a process pool.

    ``machine_name`` must be a :data:`MACHINE_FACTORIES` key for the pool
    path; when omitted (a bespoke machine config) or when the pool cannot
    start, the warm-up runs serially in-process instead.
    """
    report = TuneReport(requested=len(shapes))
    start = time.perf_counter()

    # in-flight dedup: distinct requested shapes can share one bucketed
    # plan key (and callers pass outright duplicates); each pending
    # bucket is tuned exactly once
    pending: List[Shape] = []
    in_flight = set()
    for m, n, k in shapes:
        if tuner.cache.get(m, n, k, threads) is not None:
            report.cache_hits += 1
            continue
        token = plan_key(m, n, k, tuner.dtype, threads).token
        if token in in_flight:
            report.deduped += 1
            continue
        in_flight.add(token)
        pending.append((m, n, k))

    if pending:
        jobs = default_jobs(len(pending)) if jobs is None else max(1, jobs)
        plans: List[Optional[TunedPlan]] = []
        if jobs > 1 and len(pending) > 1 and machine_name is not None:
            plans = _pool_tune(pending, threads, jobs, machine_name,
                               str(tuner.dtype))
        if not plans:  # serial path (requested, unregistered, or pool failed)
            plans = []
            for m, n, k in pending:
                try:
                    plans.append(tuner.search(m, n, k, threads=threads))
                except ReproError:
                    plans.append(None)
        for plan in plans:
            if plan is None:
                report.failed += 1
                continue
            tuner.cache.put(plan)
            report.tuned += 1
            report.speedups.append(plan.speedup_vs_heuristic)

    if tuner.cache.dirty:
        tuner.cache.save()
    report.elapsed_seconds = time.perf_counter() - start
    return report


def _pool_tune(pending: Sequence[Shape], threads: int, jobs: int,
               machine_name: str, dtype_name: str) -> List[Optional[TunedPlan]]:
    """Fan the pending shapes out over worker processes.

    Returns [] when the pool cannot run (caller falls back to serial).
    """
    try:
        from concurrent.futures import ProcessPoolExecutor

        # Warm the process-global steady-state/generator caches in the
        # parent *before* forking: on fork-based platforms every worker
        # inherits the scheduled main kernels for free, which is where
        # nearly all of a per-worker warm-up goes.
        _pool_init(machine_name, dtype_name)
        first = _tune_one((pending[0], threads))
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(pending)),
            initializer=_pool_init,
            initargs=(machine_name, dtype_name),
        ) as pool:
            raw = [first] + list(pool.map(
                _tune_one, [(shape, threads) for shape in pending[1:]],
            ))
    except (OSError, ValueError, ImportError, RuntimeError,
            ConfigError):
        return []
    return [
        TunedPlan.from_dict(entry) if entry is not None else None
        for entry in raw
    ]
