"""Input-aware adaptive kernel tuner (paper Sec. IV made systematic).

For one (M, N, K, dtype, threads) problem the tuner enumerates candidate
plans over the driver's three adaptive degrees of freedom:

* **micro-kernel tile** — both orientations of the JIT's analytically best
  tile plus the CMR frontier of the Eq. 4/Eq. 5 design space (packed B),
  and the strided-B tile under the tighter unpacked register constraint;
* **packing** — B packed into slivers vs kernels running off the
  column-major source (the P2C trade-off priced by the packing model);
* **loop partitioning** — for multithreaded runs, the rule-based BLIS
  factorization, the scored factorizer, the 1-D extremes and a balanced
  2-D split, with barrier groups priced by the sync model.

Every candidate is priced end to end by
:meth:`~repro.core.reference.ReferenceSmmDriver.cost_with` — the same
SteadyStateAnalyzer + packing + sync composition every experiment uses —
and the cheapest plan whose kernel passes the static verifier wins.  The
fixed-heuristic plan (the driver's own built-in policy) is always priced
too, so a tuned plan is never slower on the modeled cost than the
heuristic it replaces.  Results are memoized through a persistent
:class:`~repro.tuning.cache.TuningCache`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.reference import ReferenceSmmDriver
from ..kernels.design import class_tile_candidates
from ..kernels.generator import KernelSpec
from ..machine.config import MachineConfig
from ..parallel.partition import factorization_candidates
from ..plan.batch import price_plan
from ..util.errors import DriverError, KernelDesignError, ReproError
from ..verify import KernelVerifier, PlanDiagnostic, verify_plan
from .cache import TuningCache, plan_key
from .plan import PlanKey, TunedPlan

Shape = Tuple[int, int, int]


@dataclass
class TuneReport:
    """Outcome of tuning a batch of shapes (the ``tune warm`` summary)."""

    requested: int = 0
    cache_hits: int = 0
    tuned: int = 0
    failed: int = 0
    #: candidate plans the static analyzer rejected before pricing
    rejected: int = 0
    #: requested shapes that mapped to a bucket already being tuned in
    #: the same warm-up (in-flight dedup: tuned once, counted here)
    deduped: int = 0
    elapsed_seconds: float = 0.0
    #: total modeled speedup of tuned plans over the fixed heuristic
    speedups: List[float] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        """Cache hits per requested shape."""
        if self.requested == 0:
            return 0.0
        return self.cache_hits / self.requested

    @property
    def mean_speedup(self) -> float:
        """Mean modeled speedup vs the fixed heuristic."""
        if not self.speedups:
            return 1.0
        return sum(self.speedups) / len(self.speedups)

    def render(self) -> str:
        """One-paragraph summary for the CLI."""
        dedup = (
            f"{self.deduped} deduplicated, " if self.deduped else ""
        )
        return (
            f"{self.requested} shape(s): {self.cache_hits} cache hit(s) "
            f"({self.hit_rate:.0%}), {self.tuned} tuned, {dedup}"
            f"{self.failed} failed, {self.rejected} candidate plan(s) "
            f"rejected by the analyzer, {self.elapsed_seconds:.2f} s; "
            f"mean modeled speedup vs heuristic {self.mean_speedup:.2f}x"
        )


class AdaptiveTuner:
    """Selects and caches the best (tile, packing, partitioning) plan."""

    def __init__(
        self,
        machine: MachineConfig,
        dtype=np.float32,
        cache: Optional[TuningCache] = None,
        cache_path: Optional[str] = None,
        tile_limit: int = 4,
    ) -> None:
        self.machine = machine
        self.dtype = np.dtype(dtype)
        self.cache = (
            cache if cache is not None
            else TuningCache(machine, dtype, path=cache_path)
        )
        self.tile_limit = tile_limit
        self._drivers: Dict[int, ReferenceSmmDriver] = {}
        self._verifier = KernelVerifier(machine.core)
        self._verified: Dict[str, bool] = {}
        #: plan-analyzer findings that rejected candidates in the most
        #: recent :meth:`search` (each carries the ``tuner:<source>``
        #: provenance in its driver tag, for ``repro tune`` attribution)
        self.last_rejections: List["PlanDiagnostic"] = []

    # -- driver / candidate machinery ----------------------------------

    def driver(self, threads: int = 1) -> ReferenceSmmDriver:
        """The (memoized) reference driver for one thread count."""
        drv = self._drivers.get(threads)
        if drv is None:
            drv = ReferenceSmmDriver(self.machine, self.dtype,
                                     threads=threads)
            self._drivers[threads] = drv
        return drv

    def tile_candidates(self, packed_b: bool) -> List[KernelSpec]:
        """Main-tile specs to price for one packing decision.

        The CMR frontier is enumerated per core class (the union over
        ``machine.classes``), so an SVE-class or big.LITTLE machine
        contributes every class's analytically best tiles to the same
        search.  Homogeneous machines see exactly the legacy candidate
        list: class 0 is the base core, and there is no other class.
        """
        jit = self.driver(1).jit
        specs = list(jit.main_candidates(packed_b))
        if packed_b:
            seen = {(s.mr, s.nr) for s in specs}
            for _, design in class_tile_candidates(
                self.machine, self.dtype, limit=self.tile_limit
            ):
                if (design.mr, design.nr) in seen:
                    continue
                seen.add((design.mr, design.nr))
                try:
                    specs.append(jit.spec_for(design.mr, design.nr))
                except KernelDesignError:
                    continue
        return specs

    def _plan_space(self, m: int, n: int, k: int,
                    threads: int) -> Iterable[Tuple[KernelSpec, bool, object]]:
        """(spec, packed_b, factorization) triples to price."""
        for packed_b in (True, False):
            for spec in self.tile_candidates(packed_b):
                if threads == 1:
                    yield spec, packed_b, None
                    continue
                for fact in factorization_candidates(
                    m, n, threads, spec.mr, spec.nr
                ):
                    yield spec, packed_b, fact

    def _kernel_verified(self, spec: KernelSpec) -> bool:
        """PR-1 static verification of the spec's kernel (memoized)."""
        cached = self._verified.get(spec.name)
        if cached is None:
            try:
                kernel = self.driver(1).jit.generator.generate(spec)
                cached = self._verifier.verify(kernel).ok
            except ReproError:
                cached = False
            self._verified[spec.name] = cached
        return cached

    # -- tuning --------------------------------------------------------

    def heuristic_plan(self, m: int, n: int, k: int,
                       threads: int = 1) -> TunedPlan:
        """The fixed-heuristic plan: the driver's own built-in policy."""
        key = plan_key(m, n, k, self.dtype, threads)
        driver = self.driver(threads)
        timing, decision = driver.cost_gemm(key.m, key.n, key.k)
        spec = self._heuristic_spec(driver, decision)
        return TunedPlan.from_timing(
            key, spec, decision.packed_b, decision.factorization,
            timing, self.machine, self.dtype,
            verified=self._kernel_verified(spec),
            source="heuristic",
            heuristic_cycles=timing.total_cycles,
        )

    def _heuristic_spec(self, driver, decision) -> KernelSpec:
        for spec in driver.jit.main_candidates(decision.packed_b):
            if f"{spec.mr}x{spec.nr}" == decision.kernel_shape:
                return spec
        return driver.jit.main_spec

    def tune(self, m: int, n: int, k: int, threads: int = 1,
             use_cache: bool = True) -> TunedPlan:
        """The best plan for one problem (cached per shape bucket)."""
        if use_cache:
            hit = self.cache.get(m, n, k, threads)
            if hit is not None:
                return hit
        plan = self.search(m, n, k, threads)
        if use_cache:
            self.cache.put(plan)
        return plan

    def search(self, m: int, n: int, k: int, threads: int = 1) -> TunedPlan:
        """Full candidate search for the shape's bucket (cache bypassed).

        Guarantees: the returned plan's kernel passed the static verifier
        (PR-1, V0xx-V2xx), its lowered ExecutionPlan passed the plan
        analyzer (V3xx-V4xx) *before* any pricing model ran, and its
        modeled cycles are <= the fixed heuristic's.  Rejected candidates
        leave their findings in :attr:`last_rejections`, tagged with the
        ``tuner:candidate`` provenance.
        """
        key = plan_key(m, n, k, self.dtype, threads)
        driver = self.driver(threads)
        heuristic = self.heuristic_plan(m, n, k, threads)
        self.last_rejections = []

        best: Optional[Tuple[float, KernelSpec, bool, object, object]] = None
        for spec, packed_b, fact in self._plan_space(key.m, key.n, key.k,
                                                     threads):
            if not self._kernel_verified(spec):
                continue
            try:
                plan = driver.plan_with(
                    key.m, key.n, key.k, main=spec, packed_b=packed_b,
                    factorization=fact,
                )
            except (KernelDesignError, DriverError):
                continue
            plan.meta["provenance"] = "tuner:candidate"
            report = verify_plan(plan)
            if not report.ok:
                # illegal candidate plan: rejected before costing; keep
                # the findings so the CLI can attribute the rejection
                self.last_rejections.extend(report.errors)
                continue
            # batch pricing layer: candidate plans for one bucket share
            # most of their subtrees, so memoized charge tapes make the
            # search sublinear in candidates (bit-for-bit equal to
            # plan.price(), see tests/test_plan_batch.py)
            timing = price_plan(plan)
            cycles = timing.total_cycles
            if best is None or cycles < best[0]:
                best = (cycles, spec, packed_b, fact, timing)

        if best is None or best[0] > heuristic.total_cycles:
            # nothing verified beats (or every candidate failed): fall back
            # to the heuristic plan, keeping the never-slower guarantee
            return heuristic
        _, spec, packed_b, fact, timing = best
        return TunedPlan.from_timing(
            key, spec, packed_b, fact, timing, self.machine, self.dtype,
            verified=True,
            source="tuned",
            heuristic_cycles=heuristic.total_cycles,
        )

    def tune_many(self, shapes: Sequence[Shape], threads: int = 1,
                  save: bool = True) -> TuneReport:
        """Tune a batch serially through the cache; see also
        :func:`repro.tuning.warm.warm_cache` for the process-pool path."""
        report = TuneReport(requested=len(shapes))
        start = time.perf_counter()
        for m, n, k in shapes:
            before = self.cache.stats.hits
            try:
                plan = self.tune(m, n, k, threads=threads)
            except ReproError:
                report.failed += 1
                continue
            if self.cache.stats.hits > before:
                report.cache_hits += 1
            else:
                report.tuned += 1
                report.rejected += len(self.last_rejections)
                report.speedups.append(plan.speedup_vs_heuristic)
        report.elapsed_seconds = time.perf_counter() - start
        if save and self.cache.dirty:
            self.cache.save()
        return report

    # -- execution -----------------------------------------------------

    def execute(self, a: np.ndarray, b: np.ndarray, threads: int = 1):
        """Run C = A @ B under the tuned plan; returns a GemmResult.

        Numerics go through NumPy exactly like the reference driver; the
        timing attached to the result is the tuned plan's modeled cost.
        """
        m, k = a.shape
        _, n = b.shape
        plan = self.tune(m, n, k, threads=threads)
        driver = self.driver(threads)
        timing, decision = driver.cost_with(
            m, n, k, main=plan.spec, packed_b=plan.packed_b,
            factorization=plan.blis_factorization(),
        )
        result = driver.gemm(a, b)
        result.info["tuned_plan"] = plan
        result.info["decision"] = decision
        result.timing.kernel_cycles = timing.kernel_cycles
        result.timing.pack_a_cycles = timing.pack_a_cycles
        result.timing.pack_b_cycles = timing.pack_b_cycles
        result.timing.sync_cycles = timing.sync_cycles
        result.timing.other_cycles = timing.other_cycles
        result.timing.executed_flops = timing.executed_flops
        return result

    def plan_execution(self, m: int, n: int, k: int, threads: int = 1):
        """The tuned problem lowered to a traceable ExecutionPlan.

        Pins the tuned choices (tile, packing, factorization) into the
        reference driver's lowering and stamps the plan's metadata with
        the tuner's provenance — where the plan came from (``tuned`` vs
        ``heuristic`` fallback), whether the kernel was verified, and the
        modeled speedup — so a trace of a tuned run is self-describing.
        Price with a :class:`~repro.plan.trace.RecordingTraceSink` to see
        where the tuned plan spends its cycles.
        """
        tuned = self.tune(m, n, k, threads=threads)
        driver = self.driver(threads)
        plan = driver.plan_with(
            m, n, k, main=tuned.spec, packed_b=tuned.packed_b,
            factorization=tuned.blis_factorization(),
        )
        plan.meta["provenance"] = f"tuner:{tuned.source}"
        plan.meta["tuner"] = {
            "source": tuned.source,
            "verified": tuned.verified,
            "speedup_vs_heuristic": tuned.speedup_vs_heuristic,
        }
        return plan


def tuned_sweep(tuner: AdaptiveTuner, shapes: Sequence[Shape],
                threads: int = 1) -> List[Tuple[Shape, TunedPlan]]:
    """Tune every shape of a sweep; rows for the ``tune sweep`` table.

    The tuner-backed replacement for fixed-heuristic workload sweeps: each
    shape gets its own (tile, packing, partitioning) plan instead of one
    policy for the whole grid.
    """
    return [
        ((m, n, k), tuner.tune(m, n, k, threads=threads))
        for m, n, k in shapes
    ]
