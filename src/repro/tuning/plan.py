"""Executable tuning plans: what the adaptive tuner selects and caches.

A :class:`TunedPlan` pins down every adaptive degree of freedom of the
reference SMM driver for one problem shape — the micro-kernel tile (from
the JIT design space), whether B is packed (the Sec. IV packing-optional
decision), and the loop factorization for multithreaded runs — together
with the modeled cycle breakdown that justified the choice.  Plans are
plain data: they serialize to JSON dictionaries for the on-disk tuning
cache and reconstruct the exact :class:`~repro.kernels.KernelSpec` that
produced them.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Tuple

from ..kernels.generator import KernelSpec
from ..parallel.partition import BlisFactorization
from ..timing.breakdown import GemmTiming
from ..util.errors import ConfigError

#: plan provenance markers
PLAN_SOURCES = ("tuned", "heuristic", "cache")


@dataclass(frozen=True)
class PlanKey:
    """Identity of one tuning decision: bucketed shape, dtype, threads."""

    m: int
    n: int
    k: int
    dtype: str
    threads: int

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) < 1 or self.threads < 1:
            raise ConfigError(f"invalid plan key {self}")

    @property
    def token(self) -> str:
        """Stable string key used by the on-disk cache."""
        return f"{self.m}x{self.n}x{self.k}:{self.dtype}:t{self.threads}"


@dataclass(frozen=True)
class TunedPlan:
    """One executable plan: tile + packing + partitioning + modeled cost."""

    key: PlanKey
    #: generating spec of the main micro-kernel tile
    spec: KernelSpec
    packed_b: bool
    #: thread-count factorization over the loop nest (None when threads=1)
    factorization: Optional[Tuple[int, int, int, int]]
    total_cycles: float
    gflops: float
    efficiency: float
    #: cycle breakdown (kernel / pack_a / pack_b / sync / other)
    breakdown: Dict[str, float] = field(default_factory=dict)
    #: True when the selected kernel passed the PR-1 static verifier
    verified: bool = False
    #: 'tuned' (searched), 'heuristic' (fixed-policy fallback), 'cache'
    source: str = "tuned"
    #: modeled cycles of the fixed-heuristic plan for the same key
    heuristic_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.source not in PLAN_SOURCES:
            raise ConfigError(f"unknown plan source {self.source!r}")
        if self.total_cycles <= 0:
            raise ConfigError(
                f"plan for {self.key.token} has non-positive cycles"
            )

    @property
    def kernel_shape(self) -> str:
        """The selected tile as 'mrxnr'."""
        return f"{self.spec.mr}x{self.spec.nr}"

    @property
    def speedup_vs_heuristic(self) -> float:
        """Modeled heuristic cycles over plan cycles (>= 1 by design)."""
        if self.heuristic_cycles <= 0:
            return 1.0
        return self.heuristic_cycles / self.total_cycles

    def blis_factorization(self) -> Optional[BlisFactorization]:
        """The factorization as a :class:`BlisFactorization` (or None)."""
        if self.factorization is None:
            return None
        jc, ic, jr, ir = self.factorization
        return BlisFactorization(jc=jc, ic=ic, jr=jr, ir=ir)

    def to_dict(self) -> Dict:
        """JSON-serializable representation (the cache entry format)."""
        return {
            "key": asdict(self.key),
            "spec": asdict(self.spec),
            "packed_b": self.packed_b,
            "factorization": (
                list(self.factorization)
                if self.factorization is not None else None
            ),
            "total_cycles": self.total_cycles,
            "gflops": self.gflops,
            "efficiency": self.efficiency,
            "breakdown": dict(self.breakdown),
            "verified": self.verified,
            "source": self.source,
            "heuristic_cycles": self.heuristic_cycles,
        }

    @classmethod
    def from_dict(cls, data: Dict, source: Optional[str] = None) -> "TunedPlan":
        """Reconstruct a plan from :meth:`to_dict` output."""
        try:
            key = PlanKey(**data["key"])
            spec = KernelSpec(**data["spec"])
            fact = data.get("factorization")
            return cls(
                key=key,
                spec=spec,
                packed_b=bool(data["packed_b"]),
                factorization=tuple(fact) if fact is not None else None,
                total_cycles=float(data["total_cycles"]),
                gflops=float(data["gflops"]),
                efficiency=float(data["efficiency"]),
                breakdown={
                    str(k): float(v)
                    for k, v in data.get("breakdown", {}).items()
                },
                verified=bool(data.get("verified", False)),
                source=source or str(data.get("source", "tuned")),
                heuristic_cycles=float(data.get("heuristic_cycles", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"malformed plan entry: {exc}") from exc

    @classmethod
    def from_timing(
        cls,
        key: PlanKey,
        spec: KernelSpec,
        packed_b: bool,
        factorization,
        timing: GemmTiming,
        machine,
        dtype,
        **extra,
    ) -> "TunedPlan":
        """Build a plan from a costed :class:`GemmTiming`."""
        fact = None
        if factorization is not None:
            fact = (factorization.jc, factorization.ic,
                    factorization.jr, factorization.ir)
        return cls(
            key=key,
            spec=spec,
            packed_b=packed_b,
            factorization=fact,
            total_cycles=timing.total_cycles,
            gflops=timing.gflops(machine),
            efficiency=timing.efficiency(machine, dtype, key.threads),
            breakdown={
                "kernel": timing.kernel_cycles,
                "pack_a": timing.pack_a_cycles,
                "pack_b": timing.pack_b_cycles,
                "sync": timing.sync_cycles,
                "other": timing.other_cycles,
            },
            **extra,
        )

    def render(self) -> str:
        """Human-readable one-plan summary (the ``tune query`` output)."""
        lines = [
            f"plan {self.key.token} [{self.source}]",
            f"  tile          : {self.kernel_shape} "
            f"(style={self.spec.style}, unroll={self.spec.unroll}, "
            f"b_layout={self.spec.b_layout})",
            f"  packed B      : {'yes' if self.packed_b else 'no'}",
        ]
        if self.factorization is not None:
            jc, ic, jr, ir = self.factorization
            lines.append(
                f"  factorization : jc={jc} ic={ic} jr={jr} ir={ir}"
            )
        total = self.total_cycles
        shares = "  ".join(
            f"{name} {100.0 * cycles / total:.1f}%"
            for name, cycles in self.breakdown.items()
            if cycles > 0
        ) or "kernel 100.0%"
        lines.extend([
            f"  cycles        : {total:,.0f}",
            f"  GFLOPS        : {self.gflops:.2f}  "
            f"({self.efficiency:.1%} of peak)",
            f"  breakdown     : {shares}",
            f"  vs heuristic  : {self.speedup_vs_heuristic:.2f}x "
            f"(heuristic {self.heuristic_cycles:,.0f} cycles)",
            f"  verified      : {'yes' if self.verified else 'no'}",
        ])
        return "\n".join(lines)
