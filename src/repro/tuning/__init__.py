"""Input-aware adaptive kernel tuning with a persistent decision cache.

The paper's Sec. IV argues an SMM library must *adapt* to its inputs;
IAAT-style systems show the adaptation pays off when tuning decisions are
searched once and persisted.  This package is that layer for the repro
laboratory:

* :class:`AdaptiveTuner` — enumerates (tile, packing, partitioning)
  candidate plans per problem shape, prices them with the shared cost
  models, statically verifies the winning kernel and returns an
  executable :class:`TunedPlan`;
* :class:`TuningCache` — versioned on-disk JSON store keyed by shape
  bucket + machine fingerprint + code version, fronted by an in-memory
  LRU, invalidated wholesale when the machine config changes;
* :func:`warm_cache` — process-pool fan-out that pre-tunes whole M/N/K
  grids (the ``repro tune warm`` engine).

CLI: ``python -m repro tune warm|query|sweep|export|clear``.
"""

from .cache import (
    DEFAULT_CACHE_PATH,
    TUNING_SCHEMA_VERSION,
    CacheStats,
    TuningCache,
    bucket_dim,
    bucket_shape,
    machine_fingerprint,
    plan_key,
)
from .plan import PlanKey, TunedPlan
from .tuner import AdaptiveTuner, TuneReport, tuned_sweep
from .warm import MACHINE_FACTORIES, machine_by_name, warm_cache

__all__ = [
    "AdaptiveTuner",
    "TuneReport",
    "tuned_sweep",
    "TunedPlan",
    "PlanKey",
    "TuningCache",
    "CacheStats",
    "TUNING_SCHEMA_VERSION",
    "DEFAULT_CACHE_PATH",
    "bucket_dim",
    "bucket_shape",
    "plan_key",
    "machine_fingerprint",
    "MACHINE_FACTORIES",
    "machine_by_name",
    "warm_cache",
]
