"""Input-aware adaptive kernel tuning with a persistent decision cache.

The paper's Sec. IV argues an SMM library must *adapt* to its inputs;
IAAT-style systems show the adaptation pays off when tuning decisions are
searched once and persisted.  This package is that layer for the repro
laboratory:

* :class:`AdaptiveTuner` — enumerates (tile, packing, partitioning)
  candidate plans per problem shape, prices them with the shared cost
  models, statically verifies the winning kernel and returns an
  executable :class:`TunedPlan`;
* :class:`TuningCache` — versioned on-disk JSON store keyed by shape
  bucket + machine fingerprint + code version, fronted by an in-memory
  LRU, invalidated wholesale when the machine config changes;
* :class:`ShardedTuningCache` — the same table split into N
  independently-locked shards (the planning service's hot front; see
  :mod:`repro.serving`), on-disk format identical to the single cache;
* :func:`merge_payload` / :func:`merge_cache_files` — cache federation
  with a machine-fingerprint guard, better modeled cost winning on key
  collisions (``repro tune merge``);
* :func:`warm_cache` — process-pool fan-out that pre-tunes whole M/N/K
  grids with in-flight dedup (the ``repro tune warm`` engine).

CLI: ``python -m repro tune warm|query|sweep|export|merge|clear``.
"""

from .cache import (
    DEFAULT_CACHE_PATH,
    TUNING_SCHEMA_VERSION,
    CacheStats,
    MergeReport,
    ShardedTuningCache,
    TuningCache,
    bucket_dim,
    bucket_shape,
    machine_fingerprint,
    merge_cache_files,
    merge_payload,
    plan_key,
    read_cache_payload,
    shard_index,
)
from .plan import PlanKey, TunedPlan
from .tuner import AdaptiveTuner, TuneReport, tuned_sweep
from .warm import MACHINE_FACTORIES, machine_by_name, warm_cache

__all__ = [
    "AdaptiveTuner",
    "TuneReport",
    "tuned_sweep",
    "TunedPlan",
    "PlanKey",
    "TuningCache",
    "ShardedTuningCache",
    "CacheStats",
    "MergeReport",
    "merge_payload",
    "merge_cache_files",
    "read_cache_payload",
    "TUNING_SCHEMA_VERSION",
    "DEFAULT_CACHE_PATH",
    "bucket_dim",
    "bucket_shape",
    "plan_key",
    "shard_index",
    "machine_fingerprint",
    "MACHINE_FACTORIES",
    "machine_by_name",
    "warm_cache",
]
