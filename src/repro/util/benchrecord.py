"""Performance-trajectory recorder: ``make bench-record``.

Measures the throughput numbers the verified-platform roadmap tracks
across PRs and writes them to ``BENCH_<rev>.json`` at the repo root:

* **lint sweep** — wall-clock of the golden 708-plan ``repro lint
  --plans`` sweep with the full V3xx+V4xx analysis armed (the
  acceptance ceiling every analyzer PR must stay under), plus the
  verification-memo counters;
* **pricing** — plans priced per second over every golden driver on the
  edge-shape set, with the engine's verify-before-price gate on (the
  end-to-end cost a batch/serve layer would pay per plan);
* **batch sweep** — the same golden plan set priced through the batch
  layer (:mod:`repro.plan.batch`), cold then warm, with the tape /
  interning / primitive cache counters (docs/PERFORMANCE.md);
* **het sweep** — the weighted-vs-balanced modeled speedup envelope on
  the ``big_little_like()`` asymmetric socket (Fig. 10 small-M sweep);
  ``min_speedup`` must stay strictly above 1.0;
* **serve sweep** — planning-service throughput: warm-cache queries per
  second over the golden serving grid
  (:func:`repro.workloads.sweeps.serve_query_grid`) through the full
  micro-batcher path, plus single-query cold-path latency with the
  kernel library warmed.  The roadmap floors are >= 5,000 q/s warm and
  < 50 ms cold;
* **audit sweep** — ``repro audit`` wall-clock over the shipped source
  tree plus a cache prewarmed over the same golden serving grid: the
  C0xx concurrency lint, per-entry V501 replay through the plan
  verifier, and the V504 wire round-trip, all of which must come back
  clean.

All measurements run with the persistent steady-state store attached —
the configuration ``repro lint --plans`` ships with.  One JSON file per
revision seeds the perf-trajectory store: compare two files to see
whether an analyzer or engine change moved any number.

Run as ``python -m repro.util.benchrecord [--rev REV] [--output PATH]``.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Optional


def _current_rev() -> str:
    """Short git revision of the working tree, or ``unknown``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def measure_lint_sweep(machine) -> Dict[str, object]:
    """Time the golden plan sweep with the full analysis armed."""
    from ..verify import (
        clear_verification_cache,
        golden_plan_cases,
        verification_cache_info,
        verify_plan,
    )

    clear_verification_cache()
    start = time.perf_counter()
    plans, findings = 0, 0
    for lib, _, _, plan in golden_plan_cases(machine):
        plans += 1
        findings += len(verify_plan(plan, label=lib).diagnostics)
    elapsed = time.perf_counter() - start
    return {
        "plans": plans,
        "findings": findings,
        "wall_seconds": round(elapsed, 3),
        "plans_per_second": round(plans / elapsed, 1) if elapsed else 0.0,
        "memo": verification_cache_info(),
    }


def measure_pricing(machine) -> Dict[str, object]:
    """Plans priced per second: every golden driver over the edge set."""
    from ..plan import ENGINE
    from ..verify.planlint import GOLDEN_DRIVERS, lower_named
    from ..workloads.sweeps import EDGE_SHAPES

    cases: List = []
    for lib in GOLDEN_DRIVERS:
        for (m, n, k) in EDGE_SHAPES:
            cases.append(lower_named(machine, lib, 1, m, n, k))
    previous = ENGINE.verify
    ENGINE.verify = True  # the gate a batch/serve layer would run under
    start = time.perf_counter()
    try:
        for plan in cases:
            plan.price()
    finally:
        ENGINE.verify = previous
    elapsed = time.perf_counter() - start
    return {
        "plans": len(cases),
        "wall_seconds": round(elapsed, 3),
        "plans_per_second": (
            round(len(cases) / elapsed, 1) if elapsed else 0.0
        ),
    }


def measure_batch_sweep(machine) -> Dict[str, object]:
    """Batch-pricing throughput over the golden plan set, cold and warm.

    Cold prices through freshly-recorded charge tapes; warm replays
    them.  The gap is the headroom memoization buys a grid sweep (the
    tuner's candidate search and ``ShapeGridPricer`` ride the same
    caches).
    """
    from ..plan import (
        batch_pricing_cache_info,
        clear_batch_pricing_cache,
        price_batch,
    )
    from ..verify.planlint import golden_plan_cases

    plans = [plan for _, _, _, plan in golden_plan_cases(machine)]
    clear_batch_pricing_cache()
    start = time.perf_counter()
    price_batch(plans)
    cold = time.perf_counter() - start
    start = time.perf_counter()
    price_batch(plans)
    warm = time.perf_counter() - start
    return {
        "plans": len(plans),
        "cold_seconds": round(cold, 3),
        "warm_seconds": round(warm, 3),
        "cold_plans_per_second": round(len(plans) / cold, 1) if cold else 0.0,
        "warm_plans_per_second": round(len(plans) / warm, 1) if warm else 0.0,
        "cache": batch_pricing_cache_info(),
    }


def measure_het_sweep() -> Dict[str, object]:
    """Weighted-vs-even modeled speedup on the big.LITTLE machine.

    Runs the Fig. 10 small-M heterogeneous sweep
    (:func:`repro.analysis.fig10_heterogeneous`) on ``big_little_like()``
    and records the speedup envelope.  ``min_speedup`` is the roadmap
    floor — it must stay strictly above 1.0 (the weighted partition is
    never worse than the balanced one on an asymmetric socket).
    """
    from ..analysis import fig10_heterogeneous

    start = time.perf_counter()
    fig = fig10_heterogeneous()
    elapsed = time.perf_counter() - start
    speedups = fig.series_by_name("speedup").ys
    geomean = 1.0
    for s in speedups:
        geomean *= s
    geomean **= 1.0 / len(speedups)
    return {
        "shapes": len(speedups),
        "min_speedup": round(min(speedups), 4),
        "max_speedup": round(max(speedups), 4),
        "geomean_speedup": round(geomean, 4),
        "wall_seconds": round(elapsed, 3),
    }


def measure_serve_sweep(machine, repeats: int = 5) -> Dict[str, object]:
    """Planning-service throughput over the golden serving grid.

    Warm path: prewarm every golden bucket, then replay the full grid
    ``repeats`` times as concurrent client batches and record the best
    pass (the steady-state number a long-lived service sustains).  Cold
    path: one timed single query for a fresh bucket after
    :meth:`~repro.serving.PlanService.warm_kernels`, so the latency is
    pure planning/pricing — the < 50 ms acceptance number.
    """
    import asyncio
    import time as _time

    from ..serving import PlanClient, PlanRequest, PlanService, run_service_once
    from ..workloads.sweeps import serve_query_grid

    service = PlanService(machine, max_delay=0.001)
    grid = serve_query_grid(min(4, machine.n_cores))
    result: Dict[str, object] = {}

    async def body(service):
        client = PlanClient(service)
        result["kernels_warmed"] = service.warm_kernels()
        mt_threads = max(t for _, t in grid)
        for threads in (1, mt_threads):
            service.prewarm(
                [shape for shape, t in grid if t == threads],
                threads=threads,
            )
        requests = [
            PlanRequest(m=m, n=n, k=k, threads=t)
            for (m, n, k), t in grid
        ]
        best = None
        for _ in range(repeats):
            start = _time.perf_counter()
            responses = await service.query_many(requests)
            elapsed = _time.perf_counter() - start
            if any(r.provenance != "cache" for r in responses):
                raise RuntimeError("warm sweep missed the cache")
            if best is None or elapsed < best:
                best = elapsed
        result["queries"] = len(requests)
        result["repeats"] = repeats
        result["warm_seconds"] = round(best, 4)
        result["queries_per_second"] = (
            round(len(requests) / best, 1) if best else 0.0
        )
        # cold path: a bucket outside the golden grid, timed alone
        start = _time.perf_counter()
        response = await client.query(41, 43, 47)
        result["cold_query_ms"] = round(
            (_time.perf_counter() - start) * 1e3, 2
        )
        result["cold_provenance"] = response.provenance
        result["hit_rate"] = round(service.stats.hit_rate, 4)

    run_service_once(service, body)
    return result


def measure_audit_sweep(machine) -> Dict[str, object]:
    """Wall-clock of ``repro audit`` over a warmed golden-grid cache.

    Builds an in-memory sharded cache, prewarms it over the golden
    serving grid (:func:`repro.workloads.sweeps.serve_query_grid`), then
    times the full audit: the C0xx source lint over the whole package
    plus the V5xx cache pass (entry replay through the plan verifier and
    the serving-wire round-trip).  Both heads must come back clean —
    any finding fails the recording, the same bar ``make audit`` holds
    the shipped tree to.
    """
    import json as _json

    from ..serving import PlanService
    from ..verify.cacherules import CacheAuditor, wire_responses
    from ..verify.concurrency import lint_tree
    from ..workloads.sweeps import serve_query_grid

    service = PlanService(machine, cache_path="")
    grid = serve_query_grid(min(4, machine.n_cores))
    mt_threads = max(t for _, t in grid)
    for threads in (1, mt_threads):
        service.prewarm(
            [shape for shape, t in grid if t == threads],
            threads=threads,
        )
    start = time.perf_counter()
    files_scanned, source_findings = lint_tree()
    auditor = CacheAuditor(machine)
    cache_findings = auditor.audit_cache(service.cache)
    payload = _json.loads(service.cache.export_json())
    wire_findings = auditor.audit_responses(wire_responses(payload))
    elapsed = time.perf_counter() - start
    findings = len(source_findings) + len(cache_findings) + len(wire_findings)
    if findings:
        raise RuntimeError(
            f"audit sweep found {findings} finding(s) on a clean tree"
        )
    entries = len(service.cache)
    return {
        "files_scanned": files_scanned,
        "cache_entries": entries,
        "wire_responses": len(payload.get("entries", {})),
        "findings": findings,
        "wall_seconds": round(elapsed, 3),
        "entries_per_second": (
            round(entries / elapsed, 1) if elapsed else 0.0
        ),
    }


def record(rev: Optional[str] = None,
           output: Optional[str] = None) -> Path:
    """Measure all three numbers and write ``BENCH_<rev>.json``."""
    from ..blas.base import shared_analyzer
    from ..machine import phytium2000plus
    from ..pipeline import attach_steady_store, save_attached_stores
    from ..verify import RULE_CATALOG_VERSION

    rev = rev or _current_rev()
    machine = phytium2000plus()
    attach_steady_store(shared_analyzer(machine))
    payload = {
        "rev": rev,
        "machine_model": machine.name,
        "python": platform.python_version(),
        "rule_catalog_version": RULE_CATALOG_VERSION,
        "lint_sweep": measure_lint_sweep(machine),
        "pricing": measure_pricing(machine),
        "batch_sweep": measure_batch_sweep(machine),
        "het_sweep": measure_het_sweep(),
        "serve_sweep": measure_serve_sweep(machine),
        "audit_sweep": measure_audit_sweep(machine),
    }
    save_attached_stores()
    path = Path(output) if output else Path(f"BENCH_{rev}.json")
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.util.benchrecord",
        description="record lint-sweep and pricing throughput for the "
        "perf-trajectory store",
    )
    parser.add_argument("--rev", default=None,
                        help="revision tag (default: git short rev)")
    parser.add_argument("--output", default=None,
                        help="output path (default BENCH_<rev>.json)")
    args = parser.parse_args(argv)
    path = record(rev=args.rev, output=args.output)
    print(f"wrote {path}")
    print(path.read_text().rstrip())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
