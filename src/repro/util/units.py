"""Unit helpers: byte sizes, frequencies and flop-rate formatting.

The simulator works internally in *cycles* and *bytes*; experiments report
GFLOPS and percent-of-peak.  These helpers centralize the conversions so no
module hand-rolls ``1e9`` constants.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


def kib(n: float) -> int:
    """``n`` kibibytes in bytes."""
    return int(n * KIB)


def mib(n: float) -> int:
    """``n`` mebibytes in bytes."""
    return int(n * MIB)


def ghz(n: float) -> float:
    """``n`` GHz in Hz."""
    return n * 1e9


def cycles_to_seconds(cycles: float, freq_hz: float) -> float:
    """Convert a cycle count to wall-clock seconds at ``freq_hz``."""
    if freq_hz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_hz}")
    return cycles / freq_hz


def gflops(flops: float, seconds: float) -> float:
    """Flop count over ``seconds`` expressed in GFLOPS."""
    if seconds <= 0:
        raise ValueError(f"elapsed time must be positive, got {seconds}")
    return flops / seconds / 1e9


def format_bytes(n: int) -> str:
    """Human-readable byte count (e.g. ``'2.0 MiB'``)."""
    if n < 0:
        raise ValueError(f"byte count must be non-negative, got {n}")
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")


def format_percent(fraction: float, digits: int = 1) -> str:
    """Format a 0-1 fraction as a percentage string."""
    return f"{100.0 * fraction:.{digits}f}%"
