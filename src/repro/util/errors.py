"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class at an API boundary.  The subclasses partition
failures by subsystem: configuration, the instruction-set layer, the pipeline
scheduler, the memory/cache model and the GEMM drivers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ConfigError(ReproError):
    """A machine/driver configuration value is invalid or inconsistent."""


class IsaError(ReproError):
    """An instruction or register operand is malformed."""


class RegisterAllocationError(IsaError):
    """A kernel requires more architectural registers than the ISA provides."""


class ScheduleError(ReproError):
    """The pipeline scheduler was given an unschedulable sequence."""


class LayoutError(ReproError):
    """A matrix layout / address-mapping operation is invalid."""


class KernelDesignError(ReproError):
    """A micro-kernel tile shape violates a hardware design constraint."""


class KernelVerificationError(KernelDesignError):
    """An emitted kernel failed static verification (def-use / Eq. 4)."""


class DriverError(ReproError):
    """A GEMM driver was invoked with invalid operands or parameters."""


class PlanVerificationError(DriverError):
    """An ExecutionPlan failed static verification (V3xx plan lints)."""


class ParallelError(ReproError):
    """A parallelization plan is infeasible (e.g. thread factorization)."""
