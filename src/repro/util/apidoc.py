"""API reference generation from live docstrings.

Walks the :mod:`repro` package, collects every public module, class and
function with its signature and first docstring paragraph, and renders a
markdown reference.  Generated output is committed as ``docs/API.md`` and
checked by tests, so the reference can never drift from the code.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from typing import Iterator, List, Tuple


def iter_public_modules(package_name: str = "repro") -> Iterator[str]:
    """Fully-qualified names of all non-private modules in the package."""
    package = importlib.import_module(package_name)
    yield package_name
    for info in pkgutil.walk_packages(package.__path__, package_name + "."):
        leaf = info.name.rsplit(".", 1)[-1]
        if leaf.startswith("_"):
            continue
        yield info.name


def first_paragraph(obj) -> str:
    """The first paragraph of an object's docstring (or a placeholder)."""
    doc = inspect.getdoc(obj)
    if not doc:
        return "*(undocumented)*"
    return doc.split("\n\n", 1)[0].replace("\n", " ").strip()


def signature_of(obj) -> str:
    """``name(sig)`` for callables, bare name otherwise."""
    name = getattr(obj, "__name__", repr(obj))
    try:
        return f"{name}{inspect.signature(obj)}"
    except (TypeError, ValueError):
        return name


def public_members(module) -> List[Tuple[str, object]]:
    """(name, object) pairs the module deliberately exposes.

    Honors ``__all__`` when present; otherwise takes non-underscore
    classes/functions defined in the module itself.
    """
    if hasattr(module, "__all__"):
        names = list(module.__all__)
    else:
        names = [
            n for n, obj in vars(module).items()
            if not n.startswith("_")
            and (inspect.isclass(obj) or inspect.isfunction(obj))
            and getattr(obj, "__module__", None) == module.__name__
        ]
    out = []
    for name in names:
        obj = getattr(module, name, None)
        if obj is not None:
            out.append((name, obj))
    return out


def render_module(module_name: str) -> str:
    """Markdown section for one module."""
    module = importlib.import_module(module_name)
    lines = [f"## `{module_name}`", "", first_paragraph(module), ""]
    members = public_members(module)
    for name, obj in members:
        if inspect.isclass(obj):
            lines.append(f"### class `{signature_of(obj)}`")
            lines.append("")
            lines.append(first_paragraph(obj))
            lines.append("")
            for mname, method in inspect.getmembers(obj, inspect.isfunction):
                if mname.startswith("_"):
                    continue
                if method.__qualname__.split(".")[0] != obj.__name__:
                    continue  # inherited
                lines.append(f"- `{signature_of(method)}` — "
                             f"{first_paragraph(method)}")
            lines.append("")
        elif inspect.isfunction(obj):
            lines.append(f"### `{signature_of(obj)}`")
            lines.append("")
            lines.append(first_paragraph(obj))
            lines.append("")
    return "\n".join(lines)


def generate_api_reference(package_name: str = "repro") -> str:
    """The full markdown API reference for the package."""
    sections = [
        "# repro — API reference",
        "",
        "*Generated from live docstrings by `repro.util.apidoc`; regenerate "
        "with `python -m repro.util.apidoc`.*",
        "",
    ]
    # top-level and leaf modules, but skip subpackage __init__ re-exports
    # beyond the root (they would duplicate every symbol)
    for module_name in sorted(set(iter_public_modules(package_name))):
        module = importlib.import_module(module_name)
        is_package = hasattr(module, "__path__")
        if is_package and module_name != package_name:
            continue
        sections.append(render_module(module_name))
    return "\n".join(sections)


def undocumented_members(package_name: str = "repro") -> List[str]:
    """Public classes/functions lacking docstrings (must stay empty)."""
    missing = []
    for module_name in iter_public_modules(package_name):
        module = importlib.import_module(module_name)
        for name, obj in public_members(module):
            if not inspect.getdoc(obj):
                missing.append(f"{module_name}.{name}")
            if inspect.isclass(obj):
                for mname, method in inspect.getmembers(
                    obj, inspect.isfunction
                ):
                    if mname.startswith("_"):
                        continue
                    if method.__qualname__.split(".")[0] != obj.__name__:
                        continue
                    if not inspect.getdoc(method):
                        missing.append(f"{module_name}.{name}.{mname}")
    return sorted(set(missing))


def check(target) -> int:
    """Fail (non-zero) when docs or docstrings have drifted from the code.

    Two gates, both required by ``make lint``: the committed ``docs/API.md``
    must byte-match a fresh render, and every public class/function/method
    must carry a docstring (:func:`undocumented_members` empty).
    """
    status = 0
    fresh = generate_api_reference() + "\n"
    committed = target.read_text() if target.exists() else ""
    if committed != fresh:
        print(f"STALE: {target} does not match generated output; "
              "run `make docs` (python -m repro.util.apidoc)")
        status = 1
    missing = undocumented_members()
    if missing:
        print(f"MISSING DOCSTRINGS ({len(missing)}):")
        for item in missing:
            print(f"  - {item}")
        status = 1
    if status == 0:
        print(f"ok: {target} is fresh and all public members documented")
    return status


def main(argv=None) -> int:  # pragma: no cover - thin CLI wrapper
    """Regenerate ``docs/API.md`` in place (or ``--check`` its freshness)."""
    import argparse
    import pathlib

    parser = argparse.ArgumentParser(prog="repro.util.apidoc")
    parser.add_argument(
        "--check", action="store_true",
        help="verify docs/API.md is fresh and docstrings complete; "
             "write nothing",
    )
    args = parser.parse_args(argv)

    target = pathlib.Path(__file__).resolve().parents[3] / "docs" / "API.md"
    if args.check:
        return check(target)
    target.parent.mkdir(exist_ok=True)
    target.write_text(generate_api_reference() + "\n")
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
