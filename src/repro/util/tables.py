"""Plain-text table and series rendering for experiment reports.

The benchmark harness reproduces the paper's tables and figures as text:
tables render with aligned columns, figures render each series as rows of
``x  y`` pairs plus an optional ASCII sparkline so trends are visible in a
terminal or a CI log without matplotlib.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[j]) for j, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[j]) for j, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def sparkline(values: Sequence[float]) -> str:
    """Render ``values`` as a unicode sparkline (empty input -> '')."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _SPARK_CHARS[0] * len(vals)
    span = hi - lo
    out = []
    for v in vals:
        idx = int((v - lo) / span * (len(_SPARK_CHARS) - 1))
        out.append(_SPARK_CHARS[idx])
    return "".join(out)


def format_series(
    name: str,
    xs: Sequence[object],
    ys: Sequence[float],
    y_label: str = "y",
) -> str:
    """Render one figure series: a sparkline header plus x/y rows."""
    if len(xs) != len(ys):
        raise ValueError(f"series {name!r}: {len(xs)} xs vs {len(ys)} ys")
    lines = [f"{name}  [{y_label}]  {sparkline(ys)}"]
    for x, y in zip(xs, ys):
        lines.append(f"  {x!s:>8}  {y:10.3f}")
    return "\n".join(lines)


def format_figure(
    title: str,
    xs: Sequence[object],
    series: Sequence[tuple],
    y_label: str = "y",
) -> str:
    """Render a whole figure: shared x axis, one column per series.

    ``series`` is a sequence of ``(name, ys)`` pairs.
    """
    headers = ["x"] + [name for name, _ in series]
    rows = []
    for i, x in enumerate(xs):
        row: List[object] = [x]
        for name, ys in series:
            if len(ys) != len(xs):
                raise ValueError(
                    f"series {name!r} has {len(ys)} points, expected {len(xs)}"
                )
            row.append(ys[i])
        rows.append(row)
    spark_rows = "\n".join(
        f"  {name:<12} {sparkline(ys)}" for name, ys in series
    )
    table = format_table(headers, rows, title=f"{title}  [{y_label}]")
    return f"{table}\n{spark_rows}"
