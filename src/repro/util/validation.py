"""Small validation helpers shared across the package.

These keep argument checking terse and uniform: every public entry point
validates its inputs eagerly and raises :class:`~repro.util.errors.ConfigError`
or a more specific subclass with an actionable message.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .errors import ConfigError


def require(condition: bool, message: str, exc: type = ConfigError) -> None:
    """Raise ``exc(message)`` unless ``condition`` holds."""
    if not condition:
        raise exc(message)


def check_positive_int(value: int, name: str, exc: type = ConfigError) -> int:
    """Validate that ``value`` is a positive ``int`` and return it."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise exc(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise exc(f"{name} must be positive, got {value}")
    return value


def check_non_negative_int(value: int, name: str, exc: type = ConfigError) -> int:
    """Validate that ``value`` is a non-negative ``int`` and return it."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise exc(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise exc(f"{name} must be >= 0, got {value}")
    return value


def check_positive_float(value: float, name: str, exc: type = ConfigError) -> float:
    """Validate that ``value`` is a positive real number and return it as float."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise exc(f"{name} must be a number, got {type(value).__name__}")
    if value <= 0:
        raise exc(f"{name} must be positive, got {value}")
    return float(value)


def check_fraction(value: float, name: str, exc: type = ConfigError) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise exc(f"{name} must be a number, got {type(value).__name__}")
    if not 0.0 <= value <= 1.0:
        raise exc(f"{name} must be in [0, 1], got {value}")
    return float(value)


def check_power_of_two(value: int, name: str, exc: type = ConfigError) -> int:
    """Validate that ``value`` is a positive power of two."""
    check_positive_int(value, name, exc)
    if value & (value - 1) != 0:
        raise exc(f"{name} must be a power of two, got {value}")
    return value


def check_multiple_of(value: int, base: int, name: str, exc: type = ConfigError) -> int:
    """Validate that ``value`` is a positive multiple of ``base``."""
    check_positive_int(value, name, exc)
    if value % base != 0:
        raise exc(f"{name} must be a multiple of {base}, got {value}")
    return value


def check_choice(value, choices: Sequence, name: str, exc: type = ConfigError):
    """Validate that ``value`` is one of ``choices``."""
    if value not in choices:
        raise exc(f"{name} must be one of {list(choices)!r}, got {value!r}")
    return value


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"ceil_div divisor must be positive, got {b}")
    return -(-a // b)


def round_up(value: int, multiple: int) -> int:
    """Round ``value`` up to the nearest multiple of ``multiple``."""
    return ceil_div(value, multiple) * multiple


def all_distinct(items: Iterable) -> bool:
    """Return True when every element of ``items`` is unique."""
    seen = set()
    for item in items:
        if item in seen:
            return False
        seen.add(item)
    return True
