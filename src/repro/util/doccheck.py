"""Documentation link checker: every repo-relative reference must resolve.

The guides under ``docs/`` and the top-level narrative documents point at
source files, tests and each other constantly (markdown links and
backtick references like ``tests/test_plan_batch.py``).  Renaming a file
silently strands those pointers; this checker walks the documents,
extracts every reference that looks repo-relative, and fails when one no
longer resolves.  ``make docs-check`` runs it next to the API-reference
freshness gate (:mod:`repro.util.apidoc`), and ``make check`` runs both.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterator, List, Tuple

#: documents scanned: the guides plus the cross-referenced narratives
DOC_GLOBS = ("docs/*.md",)
DOC_FILES = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md")

#: names that look like file references but are command outputs or
#: files of *other* repositories mentioned by name
SKIP_NAMES = frozenset({"REPORT.md", "eval.py"})

#: markdown inline link targets: [text](target)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: backtick path references, optionally with a ::test-id suffix
_PATH_REF = re.compile(
    r"`([A-Za-z0-9_.\-/]+\.(?:md|py|json|toml))(?:::[A-Za-z0-9_:\[\]]+)?`"
)

#: link schemes that are not filesystem paths
_EXTERNAL = ("http://", "https://", "mailto:")


def iter_doc_files(root: Path) -> Iterator[Path]:
    """The markdown documents the checker covers, in sorted order."""
    seen = []
    for pattern in DOC_GLOBS:
        seen.extend(root.glob(pattern))
    for name in DOC_FILES:
        path = root / name
        if path.exists():
            seen.append(path)
    return iter(sorted(set(seen)))


def extract_references(text: str) -> List[str]:
    """Repo-relative reference candidates in one document's text.

    Markdown link targets (external schemes and pure anchors skipped)
    plus backtick file references; ``::test`` suffixes and ``#fragment``
    parts are stripped so the result is a plain path candidate.
    """
    refs = []
    for target in _LINK.findall(text):
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        refs.append(target.split("#", 1)[0])
    refs.extend(_PATH_REF.findall(text))
    return [r for r in refs if r and r not in SKIP_NAMES]


def _resolves(ref: str, doc: Path, root: Path) -> bool:
    # a reference may be rooted at the repo, at the document's own
    # directory, or (module-style shorthand like `verify/races.py`)
    # inside the package source tree
    candidates = [root / ref, doc.parent / ref]
    if "/" in ref:
        candidates.append(root / "src" / "repro" / ref)
    else:
        # bare names (`conftest.py`) are anchored wherever they exist
        candidates.extend(root.glob(f"**/{ref}"))
    return any(c.exists() for c in candidates)


def broken_references(root: Path) -> List[Tuple[str, str]]:
    """(document, reference) pairs that no longer resolve to a file."""
    broken = []
    for doc in iter_doc_files(root):
        for ref in extract_references(doc.read_text()):
            if not _resolves(ref, doc, root):
                broken.append((str(doc.relative_to(root)), ref))
    return broken


def check(root: Path) -> int:
    """Print a verdict for every scanned document; non-zero on breakage."""
    docs = list(iter_doc_files(root))
    broken = broken_references(root)
    if broken:
        print(f"BROKEN REFERENCES ({len(broken)}):")
        for doc, ref in broken:
            print(f"  - {doc}: {ref}")
        return 1
    print(f"ok: {len(docs)} document(s), all repo-relative references "
          "resolve")
    return 0


def main(argv=None) -> int:  # pragma: no cover - thin CLI wrapper
    """Check every repo-relative reference in the documentation set."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro.util.doccheck")
    parser.add_argument(
        "--root", default=None,
        help="repository root (default: three levels above this file)",
    )
    args = parser.parse_args(argv)
    root = (Path(args.root) if args.root
            else Path(__file__).resolve().parents[3])
    return check(root)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
