"""Deterministic random-number helpers.

Every stochastic element of the simulation (pseudo-random cache replacement,
synthetic workload matrices) draws from a seeded :class:`numpy.random.
Generator` so that experiments are exactly reproducible run to run.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 0x5EED_2021


def make_rng(seed: int = DEFAULT_SEED) -> np.random.Generator:
    """Create a seeded PCG64 generator."""
    return np.random.default_rng(seed)


def derive_seed(seed: int, *labels: object) -> int:
    """Derive a stable child seed from ``seed`` and a label path.

    Uses SplitMix64-style mixing over the hash of each label so that
    independent subsystems (e.g. two caches) get decorrelated streams while
    remaining fully deterministic.
    """
    state = seed & 0xFFFFFFFFFFFFFFFF
    for label in labels:
        for byte in repr(label).encode():
            state = (state ^ byte) * 0x100000001B3 & 0xFFFFFFFFFFFFFFFF
        state = _splitmix64(state)
    return state


def _splitmix64(x: int) -> int:
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


def random_matrix(
    rng: np.random.Generator,
    rows: int,
    cols: int,
    dtype=np.float32,
    order: str = "F",
) -> np.ndarray:
    """A dense random matrix with entries in [-1, 1).

    Column-major (``order='F'``) by default to match the BLAS convention the
    paper's libraries use.
    """
    if rows < 0 or cols < 0:
        raise ValueError(f"matrix shape must be non-negative, got {rows}x{cols}")
    data = rng.uniform(-1.0, 1.0, size=(rows, cols)).astype(dtype)
    return np.asarray(data, order=order)
