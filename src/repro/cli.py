"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the experiment functions so a user can
regenerate any paper artifact without writing code:

``python -m repro machine``              — print the machine model
``python -m repro fig5a|fig5b|...``      — one figure, rendered as text
``python -m repro fig9 | fig10``         — multi-panel figures
``python -m repro table1 | table2``      — the tables
``python -m repro gemm M N K [--lib L] [--threads T]`` — one costed GEMM
``python -m repro tune <warm|query|sweep|export|merge|clear>`` — tuner
``python -m repro serve [--self-test]``  — the planning service
``python -m repro all``                  — the whole battery
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from . import analysis
from .blas import make_driver
from .core import ReferenceSmmDriver
from .machine import machine_summary, phytium2000plus
from .parallel import MultithreadedGemm

_FIGURES = {
    "fig5a": analysis.fig5a,
    "fig5b": analysis.fig5b,
    "fig5c": analysis.fig5c,
    "fig5d": analysis.fig5d,
    "fig6": analysis.fig6,
    "fig8": analysis.fig8,
}
_MULTI = {"fig9": analysis.fig9, "fig10": analysis.fig10}
_LIBS = ("openblas", "blis", "blasfeo", "eigen", "reference")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's SMM characterization "
        "experiments on the simulated Phytium 2000+.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("machine", help="print the machine model")

    machines = sub.add_parser(
        "machines", help="list every machine model (core classes, SIMD "
        "width, peak GFLOPS)"
    )
    machines.add_argument(
        "--json", action="store_true",
        help="emit the machine inventory as JSON instead of text",
    )

    for name in sorted(_FIGURES):
        sub.add_parser(name, help=f"render {name}")
    for name in sorted(_MULTI):
        sub.add_parser(name, help=f"render all panels of {name}")
    sub.add_parser("fig7", help="render the Fig. 7 micro-kernel analysis")
    sub.add_parser("table1", help="render Table I")
    sub.add_parser("table2", help="render Table II")
    sub.add_parser("all", help="run the whole battery")
    sub.add_parser("verify", help="evaluate every paper claim (PASS/FAIL)")

    lint = sub.add_parser(
        "lint", help="statically verify kernels (default) or lowered "
        "execution plans (--plans)"
    )
    lint.add_argument(
        "--self-check", action="store_true",
        help="instead run the verifier's negative controls "
        "(every rule must fire on its known-bad kernel or plan)",
    )
    lint.add_argument(
        "--inject-bad", action="store_true",
        help="also lint a deliberately broken kernel/plan (forces a "
        "nonzero exit; exercises the error path end to end)",
    )
    lint.add_argument(
        "--plans", action="store_true",
        help="analyze ExecutionPlans (V3xx-V4xx rules) instead of "
        "kernels; "
        "with no shape, sweeps the golden Fig. 5/Fig. 10 grids over "
        "every driver at 1/4/64 threads",
    )
    lint.add_argument(
        "shape", nargs="*", type=int, metavar="M N K",
        help="with --plans: analyze one GEMM shape instead of the "
        "golden sweep",
    )
    lint.add_argument(
        "--lib", choices=_LIBS + ("reference-fused",), default=None,
        help="with --plans: restrict the analysis to one driver",
    )
    lint.add_argument(
        "--threads", type=int, default=None,
        help="with --plans: thread count for the lowering "
        "(default: 1, or the 1/4/64 sweep without a shape)",
    )
    lint.add_argument(
        "--machine", default="phytium2000plus",
        choices=("phytium2000plus", "graviton2_like", "a64fx_like",
                 "big_little_like", "sve512_like"),
        help="machine model to lint against (the golden thread sweep "
        "clamps to its core count)",
    )
    lint.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON diagnostics "
        "(code/severity/node-path) instead of tables",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the full rule catalog — V0xx-V2xx kernels, "
        "V3xx-V4xx plans, V5xx caches/wire, C0xx concurrency — "
        "(id, severity, summary) and exit",
    )

    audit = sub.add_parser(
        "audit", help="static concurrency lint of the package source "
        "(C0xx) plus cache & wire integrity verification (V5xx)"
    )
    audit.add_argument(
        "--cache", default=None, metavar="PATH",
        help="also audit an exported/on-disk tuning-cache file: replay "
        "every entry through the plan verifier (V501), check "
        "fingerprint/schema consistency (V502), cost monotonicity "
        "(V503) and the serving wire round-trip (V504)",
    )
    audit.add_argument(
        "--machine", default="phytium2000plus",
        choices=("phytium2000plus", "graviton2_like", "a64fx_like",
                 "big_little_like", "sve512_like"),
        help="machine model the cache audit verifies against",
    )
    audit.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON findings instead of tables",
    )
    audit.add_argument(
        "--self-check", action="store_true",
        help="instead run the audit's negative controls (every C0xx "
        "rule must fire on its seeded-bug fixture, every V5xx rule "
        "on its mutated payload)",
    )
    audit.add_argument(
        "--inject-bad", action="store_true",
        help="also audit a seeded-bug source file and a forged cache "
        "payload (forces a nonzero exit; exercises the error path)",
    )

    tune = sub.add_parser(
        "tune", help="input-aware adaptive kernel tuner "
        "(warm/query/sweep/export/clear)"
    )
    tsub = tune.add_subparsers(dest="tune_command", required=True)

    def _tune_common(p) -> None:
        p.add_argument("--cache", default=None,
                       help="tuning-cache file "
                       "(default .repro_tuning_cache.json)")
        p.add_argument("--machine", default="phytium2000plus",
                       choices=("phytium2000plus", "graviton2_like",
                                "a64fx_like", "big_little_like",
                                "sve512_like"),
                       help="machine model to tune for")
        p.add_argument("--threads", type=int, default=1)

    warm = tsub.add_parser(
        "warm", help="pre-tune a shape grid into the cache (process pool)"
    )
    _tune_common(warm)
    warm.add_argument("--shapes", default="4:64",
                      help="square-shape grid lo:hi[:step] (default 4:64)")
    warm.add_argument("--jobs", type=int, default=None,
                      help="worker processes (default: auto; 1 = serial)")

    query = tsub.add_parser("query", help="show the tuned plan for a shape")
    _tune_common(query)
    query.add_argument("m", type=int)
    query.add_argument("n", type=int)
    query.add_argument("k", type=int)

    tsweep = tsub.add_parser(
        "sweep", help="tuner-backed efficiency sweep over a shape grid"
    )
    _tune_common(tsweep)
    tsweep.add_argument("--shapes", default="4:64:4",
                        help="square-shape grid lo:hi[:step]")

    export = tsub.add_parser("export", help="dump the tuning cache as JSON")
    _tune_common(export)
    export.add_argument("--output", default="",
                        help="write to a file instead of stdout")

    merge = tsub.add_parser(
        "merge", help="merge exported tuning caches into the cache "
        "(fingerprint-guarded; better modeled cost wins collisions)"
    )
    _tune_common(merge)
    merge.add_argument("files", nargs="+", metavar="FILE",
                       help="exported cache files (tune export output)")
    merge.add_argument("--force", action="store_true",
                       help="merge even when the machine fingerprint "
                       "does not match this machine/dtype/code version")

    clear = tsub.add_parser("clear", help="delete the tuning cache")
    _tune_common(clear)

    serve = sub.add_parser(
        "serve", help="GEMM planning service: async micro-batched plan "
        "queries over a sharded tuning cache"
    )
    serve.add_argument("--machine", default="phytium2000plus",
                       choices=("phytium2000plus", "graviton2_like",
                                "a64fx_like", "big_little_like",
                                "sve512_like"),
                       help="machine model to serve plans for")
    serve.add_argument("--cache", default=None,
                       help="tuning-cache file "
                       "(default .repro_tuning_cache.json)")
    serve.add_argument("--shards", type=int, default=8,
                       help="tuning-cache shard count (default 8)")
    serve.add_argument("--jobs", type=int, default=0,
                       help="background tuning worker processes "
                       "(default 0: one in-process thread)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="TCP bind address")
    serve.add_argument("--port", type=int, default=8513,
                       help="TCP port (0 = ephemeral)")
    serve.add_argument("--self-test", action="store_true",
                       help="run the in-process smoke (mixed hot/cold "
                       "batch, dedup, parity, clean shutdown) and exit")
    serve.add_argument("--stats", action="store_true",
                       help="include the full service/cache/shard "
                       "stats block in the output")

    gemm = sub.add_parser("gemm", help="cost one GEMM shape")
    gemm.add_argument("m", type=int)
    gemm.add_argument("n", type=int)
    gemm.add_argument("k", type=int)
    gemm.add_argument("--lib", choices=_LIBS, default="reference")
    gemm.add_argument("--threads", type=int, default=1)

    trace = sub.add_parser(
        "trace", help="dump one GEMM's execution plan and event trace"
    )
    trace.add_argument("m", type=int)
    trace.add_argument("n", type=int)
    trace.add_argument("k", type=int)
    trace.add_argument("--lib", choices=_LIBS + ("reference-fused",),
                       default="reference",
                       help="driver to lower (reference-fused = "
                       "reference with fused B packing)")
    trace.add_argument("--threads", type=int, default=1)
    trace.add_argument("--tuned", action="store_true",
                       help="trace the adaptive tuner's plan for the "
                       "shape instead of the driver's heuristic plan "
                       "(reference driver only)")
    trace.add_argument("--json", default="", metavar="PATH",
                       help="write the JSON trace to PATH "
                       "('-' = raw JSON on stdout)")

    report = sub.add_parser(
        "report", help="generate the full markdown report"
    )
    report.add_argument("--output", default="",
                        help="write to a file instead of stdout")

    kern = sub.add_parser("kernel", help="diagnose one micro-kernel")
    kern.add_argument("mr", type=int)
    kern.add_argument("nr", type=int)
    kern.add_argument("--style", choices=("pipelined", "naive", "compiled"),
                      default="pipelined")
    kern.add_argument("--unroll", type=int, default=4)
    kern.add_argument("--no-contraction", action="store_true")

    sens = sub.add_parser("sensitivity",
                          help="sweep one machine parameter")
    sens.add_argument("parameter")
    sens.add_argument("values", nargs="+", type=float)
    return parser


def _render_fig7(machine) -> str:
    result = analysis.fig7(machine)
    lines = [result["naive_listing"], "",
             f"naive 8x4: {result['naive_efficiency']:.1%} of peak"]
    lines.append("edge family: " + ", ".join(
        f"{k}={v:.0%}" for k, v in result["edge_family_efficiency"].items()
    ))
    return "\n".join(lines)


def _run_gemm(machine, args) -> str:
    dtype = np.float32
    if args.lib == "reference":
        driver = ReferenceSmmDriver(machine, threads=args.threads)
        timing, decision = driver.cost_gemm(args.m, args.n, args.k)
        extra = f"decision: packed_b={decision.packed_b}"
    elif args.threads > 1:
        mt = MultithreadedGemm(machine, args.lib, threads=args.threads)
        timing, info = mt.cost(args.m, args.n, args.k)
        extra = f"scheme: {info.get('scheme')}"
    else:
        timing = make_driver(args.lib, machine).cost_gemm(
            args.m, args.n, args.k
        )
        extra = ""
    eff = timing.efficiency(machine, dtype, args.threads)
    bp = timing.breakdown_percent()
    lines = [
        f"{args.lib} GEMM {args.m}x{args.n}x{args.k} fp32, "
        f"{args.threads} thread(s)",
        f"  cycles        : {timing.total_cycles:,.0f}",
        f"  GFLOPS        : {timing.gflops(machine):.2f}",
        f"  % of peak     : {eff:.1%}",
        f"  breakdown     : kernel {bp['kernel']:.1f}%  "
        f"packA {bp['pack_a']:.1f}%  packB {bp['pack_b']:.1f}%  "
        f"sync {bp['sync']:.1f}%",
    ]
    if extra:
        lines.append(f"  {extra}")
    return "\n".join(lines)


def _trace_plan(machine, args):
    """Lower the requested driver/shape to an ExecutionPlan."""
    if args.tuned:
        if not args.lib.startswith("reference"):
            raise SystemExit(
                "error: --tuned traces the reference driver "
                "(the tuner's execution backend); drop --lib or use "
                "--lib reference"
            )
        from .tuning import AdaptiveTuner

        return AdaptiveTuner(machine).plan_execution(
            args.m, args.n, args.k, threads=args.threads
        )
    if args.lib.startswith("reference"):
        driver = ReferenceSmmDriver(
            machine, threads=args.threads,
            fused_packing=(args.lib == "reference-fused"),
        )
        return driver.plan_gemm(args.m, args.n, args.k)
    if args.threads > 1:
        mt = MultithreadedGemm(machine, args.lib, threads=args.threads)
        return mt.plan_gemm(args.m, args.n, args.k)
    return make_driver(args.lib, machine).plan_gemm(args.m, args.n, args.k)


def _run_trace(machine, args) -> tuple:
    """The ``repro trace`` command body: (report text, exit code)."""
    import json

    from .pipeline.diagnose import summarize_trace
    from .plan import RecordingTraceSink
    from .timing.breakdown import timing_from_trace

    plan = _trace_plan(machine, args)
    sink = RecordingTraceSink()
    timing = plan.price(sink=sink)

    # reconciliation: replaying the trace's phase events must rebuild the
    # priced buckets bit for bit (the golden-parity property, per trace)
    replayed = timing_from_trace(sink.events)
    reconciled = replayed.as_dict() == timing.as_dict()

    dump = plan.to_dict()
    payload = {
        "meta": dump["meta"],
        "ops": dump["ops"],
        "plan": dump["tree"],
        "timing": timing.as_dict(),
        "events": [event.to_dict() for event in sink.events],
        "reconciled": reconciled,
    }
    dumped = json.dumps(payload, indent=2, sort_keys=True)
    if args.json == "-":
        return dumped, 0 if reconciled else 1

    bp = timing.breakdown_percent()
    lines = [
        f"{args.lib} GEMM {args.m}x{args.n}x{args.k}, "
        f"{args.threads} thread(s) — execution plan "
        f"({plan.count_ops()} node(s)):",
        plan.render_tree(),
        "",
        f"  cycles        : {timing.total_cycles:,.0f}",
        f"  GFLOPS        : {timing.gflops(machine):.2f}",
        f"  breakdown     : kernel {bp['kernel']:.1f}%  "
        f"packA {bp['pack_a']:.1f}%  packB {bp['pack_b']:.1f}%  "
        f"sync {bp['sync']:.1f}%  other {bp['other']:.1f}%",
        "",
        summarize_trace(sink.events).render(),
        "",
        "trace reconciliation: "
        + ("OK (event sums match the priced timing bit for bit)"
           if reconciled else
           "FAIL (event sums do not rebuild the priced timing)"),
    ]
    if args.json:
        import pathlib

        pathlib.Path(args.json).write_text(dumped + "\n")
        lines.append(f"wrote {args.json}")
    return "\n".join(lines), 0 if reconciled else 1


def _lint_kernels(machine) -> List:
    """(origin, kernel) pairs covering everything ``repro lint`` checks.

    Coverage: all four library catalogs (mains, alternates and the edge
    kernels their edge policies emit), a generator grid across all three
    styles and representative tile shapes, and the JIT factory's main,
    edge and strided-B kernels.
    """
    from .kernels import JitKernelFactory, KernelSpec, MicroKernelGenerator
    from .kernels.catalog import all_catalogs
    from .verify import catalog_specs

    labelled = []
    for library, catalog in all_catalogs().items():
        labelled.extend((library, spec) for spec in catalog_specs(catalog))
    for style in ("pipelined", "naive", "compiled"):
        for mr, nr, unroll in (
            (8, 4, 4), (16, 4, 8), (12, 4, 1),
            (4, 4, 2), (5, 3, 2), (3, 4, 1), (8, 6, 2),
        ):
            labelled.append(("grid", KernelSpec(
                mr, nr, unroll=unroll, style=style, label="lint",
            )))
    jit = JitKernelFactory(machine.core)
    labelled.append(("jit", jit.main_spec))
    labelled.append(("jit", jit.spec_for(13, 4)))
    labelled.append(("jit", jit.strided_main_spec()))

    # verify=False: lint reports findings instead of raising on the spot
    generator = MicroKernelGenerator(verify=False)
    kernels, seen = [], set()
    for origin, spec in labelled:
        kernel = generator.generate(spec)
        if kernel.name not in seen:
            seen.add(kernel.name)
            kernels.append((origin, kernel))
    return kernels


def _run_list_rules(as_json: bool) -> tuple:
    """The ``repro lint --list-rules`` body: the full rule catalog
    (V0xx-V2xx kernels, V3xx-V4xx plans, V5xx caches/wire, C0xx
    concurrency)."""
    import json

    from .util.tables import format_table
    from .verify import RULE_CATALOG_VERSION, full_rule_catalog

    rules = sorted(full_rule_catalog().values(), key=lambda r: r.rule_id)
    if as_json:
        payload = {
            "mode": "rules",
            "rule_catalog_version": RULE_CATALOG_VERSION,
            "rules": [
                {"rule": r.rule_id, "severity": r.severity,
                 "summary": r.summary}
                for r in rules
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True), 0
    text = format_table(
        ("rule", "severity", "summary"),
        [(r.rule_id, r.severity, r.summary) for r in rules],
        title=f"rule catalog (version {RULE_CATALOG_VERSION})",
    )
    return (
        f"{text}\n\n{len(rules)} rule(s), "
        f"catalog version {RULE_CATALOG_VERSION}",
        0,
    )


def _self_check_output(results, title: str, as_json: bool) -> tuple:
    """Render a (rule, fired) negative-control run for either verifier."""
    import json

    from .util.tables import format_table
    from .verify import RULE_CATALOG_VERSION

    missed = sorted(rule for rule, fired in results if not fired)
    if as_json:
        payload = {
            "mode": title,
            "ok": not missed,
            "rule_catalog_version": RULE_CATALOG_VERSION,
            "results": [
                {"rule": rule, "fired": fired} for rule, fired in results
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True), 1 if missed else 0
    rows = [(rule, "fired" if fired else "MISSED")
            for rule, fired in results]
    text = format_table(("rule", "status"), rows, title=title)
    verdict = (f"FAIL: rules never fired: {missed}" if missed
               else f"OK: all {len(results)} rules fire on their "
               "negative controls")
    return text + "\n\n" + verdict, 1 if missed else 0


def _run_plan_lint(machine, args) -> tuple:
    """The ``repro lint --plans`` command body: (report text, exit code).

    With no shape, sweeps the golden Fig. 5 / Fig. 10 grids across every
    driver at 1/4/64 threads, prices every plan through the batch
    engine, and fails on *any* finding (the acceptance bar: every legal
    lowering analyzes clean).  ``M N K [--lib] [--threads]`` narrows to
    one case; ``--self-check`` runs the V3xx mutation negative
    controls; ``--inject-bad`` appends a known-broken plan.

    The sweep runs on the persistent steady-state store (see
    :mod:`repro.pipeline.steadystore`): the first invocation on a
    machine model analyzes every micro-kernel and saves the table; later
    invocations are table lookups and the full 708-plan sweep — lower,
    verify, price — completes in well under a second.
    """
    import json
    import time

    from .blas.base import shared_analyzer
    from .pipeline import attach_steady_store, save_attached_stores
    from .plan import batch_pricing_cache_info, price_batch
    from .util.tables import format_table
    from .verify import (
        RULE_CATALOG_VERSION,
        plan_self_check,
        verification_cache_info,
        verify_plan,
    )
    from .verify.planlint import golden_plan_cases, inject_bad_plan

    if args.self_check:
        return _self_check_output(
            plan_self_check(machine), "plan verifier self-check",
            args.json,
        )

    if args.shape and len(args.shape) != 3:
        return "error: --plans expects either no shape or M N K", 2
    shape = tuple(args.shape) if args.shape else None
    libs = (args.lib,) if args.lib else None
    threads = (args.threads,) if args.threads is not None else None
    if threads is None and machine.n_cores < 64:
        # small sockets (e.g. big_little_like) can't run the 64-thread
        # leg of the golden sweep; clamp to the core count
        from .workloads import sweeps as _sweeps

        threads = tuple(sorted({
            min(t, machine.n_cores)
            for t in (1,) + _sweeps.GOLDEN_MT_THREADS
        }))

    attach_steady_store(shared_analyzer(machine))
    start = time.perf_counter()
    cases = list(golden_plan_cases(
        machine, shape=shape, libs=libs, threads=threads,
    ))
    reports = [
        (lib, t, shp, verify_plan(plan, label=lib))
        for lib, t, shp, plan in cases
    ]
    # batch pricing over the whole sweep: the <1 s acceptance target
    # covers lower + verify + price (see docs/PERFORMANCE.md)
    price_batch([plan for _, _, _, plan in cases])
    sweep_seconds = time.perf_counter() - start
    save_attached_stores()
    batch_info = batch_pricing_cache_info()
    if args.inject_bad:
        rule_id, bad = inject_bad_plan(machine)
        shp = bad.meta.get("shape", (0, 0, 0))
        reports.append(("injected", 1, shp, verify_plan(bad, "injected")))

    findings = [
        (lib, t, shp, d)
        for lib, t, shp, report in reports
        for d in report.diagnostics
    ]
    ok = not findings

    if args.json:
        payload = {
            "mode": "plans",
            "ok": ok,
            "plans": len(reports),
            "sweep_seconds": sweep_seconds,
            "rule_catalog_version": RULE_CATALOG_VERSION,
            "memo": verification_cache_info(),
            "batch": batch_info,
            "cases": [
                dict(report.to_dict(), threads=t)
                for _, t, _, report in reports
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True), 0 if ok else 1

    # summarize per (driver, threads); the golden sweep is ~700 plans
    groups = {}
    for lib, t, _, report in reports:
        row = groups.setdefault((lib, t), [0, 0, 0, 0, 0])
        row[0] += 1
        row[1] += report.nodes
        row[2] += len(report.errors)
        row[3] += len(report.warnings)
        row[4] += len(report.infos)
    rows = [
        (lib, t, *counts) for (lib, t), counts in sorted(groups.items())
    ]
    lines = [format_table(
        ("driver", "threads", "plans", "nodes", "err", "warn", "info"),
        rows, title="plan lint",
    ), ""]
    for lib, t, shp, d in findings:
        shape_txt = "x".join(str(s) for s in shp)
        lines.append(
            f"{d.severity}: {d.rule} [{lib} {shape_txt} @{t}t] "
            f"{d.path}: {d.message}"
        )
    memo = verification_cache_info()
    lines.append(
        f"verification memo: {memo['hits']} hit(s), "
        f"{memo['misses']} miss(es), {memo['size']} entries"
    )
    tapes = batch_info["tapes"]
    tape_total = tapes["hits"] + tapes["misses"]
    hit_rate = tapes["hits"] / tape_total if tape_total else 0.0
    lines.append(
        f"batch pricing: {tapes['hits']} tape hit(s), "
        f"{tapes['misses']} miss(es) ({hit_rate:.0%} hit rate), "
        f"{batch_info['interning']['unique']} interned subtree(s)"
    )
    lines.append(
        f"{'OK' if ok else 'FAIL'}: {len(reports)} plans priced in "
        f"{sweep_seconds:.2f}s, {len(findings)} finding(s)"
    )
    return "\n".join(lines), 0 if ok else 1


def _run_lint(machine, args) -> tuple:
    """The ``repro lint`` command body: (report text, exit code)."""
    import json

    from .isa.sequence import KernelSequence
    from .pipeline import SteadyStateAnalyzer
    from .util.tables import format_table
    from .verify import RULE_CATALOG_VERSION, KernelVerifier, self_check

    if args.list_rules:
        return _run_list_rules(args.json)

    if args.plans:
        return _run_plan_lint(machine, args)

    if args.self_check:
        return _self_check_output(
            self_check(machine.core), "verifier self-check", args.json,
        )

    kernels = _lint_kernels(machine)
    if args.inject_bad:
        # stripping the prologue leaves every accumulator uninitialized,
        # the canonical V001 kernel
        origin, donor = kernels[0]
        kernels.append(("injected", KernelSequence(
            name=donor.name + "-no-prologue",
            prologue=(),
            body=donor.body,
            epilogue=donor.epilogue,
            meta=dict(donor.meta),
        )))

    verifier = KernelVerifier(machine.core)
    analyzer = SteadyStateAnalyzer(machine.core)
    rows = []
    n_errors = n_warnings = 0
    bound_violations = []
    findings = []
    json_cases = []
    for origin, kernel in kernels:
        report = verifier.verify(kernel)
        findings.extend(
            f"{d.severity}: {d.rule} [{kernel.name}] {d.message}"
            for d in report.diagnostics
        )
        n_errors += len(report.errors)
        n_warnings += len(report.warnings)
        scheduled = None
        if report.ok and report.bounds is not None:
            scheduled = analyzer.analyze(kernel).cycles_per_iter
            if report.bounds.cycles_lower_bound > scheduled + 1e-9:
                bound_violations.append(kernel.name)
        if args.json:
            json_cases.append(dict(report.to_dict(), origin=origin))
        rows.append((
            origin,
            kernel.name,
            len(report.errors),
            len(report.warnings),
            len(report.infos),
            report.live_high_water,
            (f"{report.bounds.cycles_lower_bound:.1f}"
             if report.bounds is not None else "-"),
            f"{scheduled:.1f}" if scheduled is not None else "-",
        ))
    ok = not n_errors and not bound_violations
    if args.json:
        payload = {
            "mode": "kernels",
            "ok": ok,
            "kernels": len(kernels),
            "rule_catalog_version": RULE_CATALOG_VERSION,
            "bound_violations": bound_violations,
            "cases": json_cases,
        }
        return json.dumps(payload, indent=2, sort_keys=True), 0 if ok else 1
    text = format_table(
        ("origin", "kernel", "err", "warn", "info",
         "live regs", "static lb", "scheduled"),
        rows, title="kernel lint",
    )
    lines = [text, ""]
    lines.extend(findings)
    if bound_violations:
        lines.append(
            f"FAIL: static lower bound exceeds scheduled cycles for "
            f"{bound_violations} (unsound bound or scheduler bug)"
        )
    lines.append(
        f"{'OK' if ok else 'FAIL'}: {len(kernels)} kernels, "
        f"{n_errors} errors, {n_warnings} warnings"
    )
    return "\n".join(lines), 0 if ok else 1


def _run_audit(machine, args) -> tuple:
    """The ``repro audit`` command body: (report text, exit code).

    Head 1 lints the package's own source for concurrency-discipline
    violations (C0xx: unguarded mutation of lock-guarded state,
    unpicklable process-pool submissions, eager asyncio primitives,
    awaits under a thread lock).  Head 2 (``--cache PATH``) verifies a
    tuning-cache file: every entry is re-lowered through the full plan
    verifier (V501), checked for fingerprint/schema consistency (V502)
    and cost monotonicity (V503), and round-tripped through the serving
    wire format (V504).  ``--self-check`` runs the mutation negative
    controls for all nine rules; ``--inject-bad`` appends a seeded-bug
    source file and a forged payload, forcing a nonzero exit.
    """
    import json

    from .util.errors import ConfigError
    from .verify import RULE_CATALOG_VERSION
    from .verify.cacherules import (
        CacheAuditor,
        audit_cache_file,
        cache_self_check,
        inject_bad_payload,
    )
    from .verify.concurrency import (
        concurrency_self_check,
        inject_bad_source,
        lint_file,
        lint_tree,
    )

    if args.self_check:
        results = concurrency_self_check() + cache_self_check(machine)
        return _self_check_output(results, "audit self-check", args.json)

    files_scanned, findings = lint_tree()
    findings = list(findings)
    cache_entries = 0
    if args.cache:
        from .blas.base import shared_analyzer
        from .pipeline import attach_steady_store, save_attached_stores

        attach_steady_store(shared_analyzer(machine))
        try:
            cache_findings, cache_entries = audit_cache_file(
                machine, args.cache
            )
        except ConfigError as exc:
            return f"error: {exc}", 2
        save_attached_stores()
        findings.extend(cache_findings)

    if args.inject_bad:
        _, bad_path = inject_bad_source()
        findings.extend(lint_file(bad_path))
        _, bad_payload = inject_bad_payload(machine)
        findings.extend(CacheAuditor(machine, replay=False).audit_payload(
            bad_payload, source="injected",
        ))

    ok = not findings
    if args.json:
        payload = {
            "mode": "audit",
            "ok": ok,
            "rule_catalog_version": RULE_CATALOG_VERSION,
            "files_scanned": files_scanned,
            "cache": args.cache,
            "cache_entries": cache_entries,
            "findings": [d.to_dict() for d in findings],
        }
        return json.dumps(payload, indent=2, sort_keys=True), 0 if ok else 1

    lines = []
    for d in findings:
        symbol = getattr(d, "symbol", "")
        anchor = f"{d.where} {symbol}".rstrip()
        lines.append(f"{d.severity}: {d.rule} [{anchor}] {d.message}")
    scope = f"{files_scanned} source file(s)"
    if args.cache:
        scope += f", cache {args.cache!r} ({cache_entries} entries)"
    lines.append(
        f"{'OK' if ok else 'FAIL'}: {scope} audited, "
        f"{len(findings)} finding(s)"
    )
    return "\n".join(lines), 0 if ok else 1


def _run_machines(args) -> tuple:
    """The ``repro machines`` command body: (report text, exit code).

    Inventories every registered machine factory with its core-class
    breakdown — per class: core count, SIMD width, frequency and
    aggregate peak — so asymmetric sockets are legible at a glance.
    """
    import json

    from .tuning.warm import MACHINE_FACTORIES

    dtype = np.float32
    inventory = []
    for name in sorted(MACHINE_FACTORIES):
        machine = MACHINE_FACTORIES[name]()
        classes = []
        for idx, cls in enumerate(machine.classes):
            classes.append({
                "index": idx,
                "name": cls.name,
                "cores": cls.count,
                "vector_bits": cls.core.vector_bits,
                "simd_lanes_f32": cls.simd_lanes(dtype),
                "freq_ghz": cls.core.freq_hz / 1e9,
                "peak_gflops_f32": round(cls.peak_gflops(dtype), 2),
            })
        inventory.append({
            "factory": name,
            "machine": machine.name,
            "cores": machine.n_cores,
            "heterogeneous": machine.is_heterogeneous,
            "classes": classes,
            "peak_gflops_f32": round(
                machine.peak_gflops(dtype, machine.n_cores), 2
            ),
        })

    if args.json:
        return json.dumps({"machines": inventory}, indent=2), 0

    lines = [f"machine models ({len(inventory)}):"]
    for entry in inventory:
        kind = ("heterogeneous" if entry["heterogeneous"]
                else "homogeneous")
        lines.append(
            f"  {entry['factory']}: {entry['cores']} cores "
            f"({kind}, {len(entry['classes'])} class(es)), "
            f"peak {entry['peak_gflops_f32']:.1f} GFLOPS fp32"
        )
        for cls in entry["classes"]:
            lines.append(
                f"    [{cls['index']}] {cls['name']}: "
                f"{cls['cores']} x {cls['vector_bits']}-bit SIMD "
                f"({cls['simd_lanes_f32']} f32 lanes) @ "
                f"{cls['freq_ghz']:.2f} GHz, "
                f"{cls['peak_gflops_f32']:.1f} GFLOPS"
            )
    return "\n".join(lines), 0


def _run_tune(args) -> tuple:
    """The ``repro tune`` command body: (report text, exit code)."""
    from .tuning import (
        AdaptiveTuner,
        TuningCache,
        machine_by_name,
        tuned_sweep,
        warm_cache,
    )
    from .util.tables import format_table
    from .workloads.sweeps import parse_shape_range

    machine = machine_by_name(args.machine)
    cache = TuningCache(machine, path=args.cache)
    tuner = AdaptiveTuner(machine, cache=cache)
    cmd = args.tune_command

    if cmd in ("warm", "sweep"):
        try:
            shapes = parse_shape_range(args.shapes)
        except ValueError as exc:
            return f"error: {exc}", 2

    if cmd == "warm":
        report = warm_cache(
            tuner, shapes, threads=args.threads,
            jobs=args.jobs, machine_name=args.machine,
        )
        summary = cache.summary()
        memo = tuner.driver(1).analyzer.cache_info()
        return "\n".join([
            report.render(),
            f"cache: {summary['entries']} entries @ {summary['path']} "
            f"(fingerprint {summary['fingerprint']})",
            f"scheduler memo: {memo['entries']} kernel steady-states",
        ]), 0

    if cmd == "query":
        plan = tuner.tune(args.m, args.n, args.k, threads=args.threads)
        if cache.dirty:
            cache.save()
        summary = cache.summary()
        lines = [
            plan.render(),
            f"  cache         : {summary['entries']} entrie(s), "
            f"{summary['hits']} hit(s) / {summary['misses']} miss(es) "
            f"({summary['hit_rate']:.0%} hit rate), "
            f"fingerprint {summary['fingerprint']}",
        ]
        if tuner.last_rejections:
            shown = tuner.last_rejections[:8]
            lines.append(
                f"{len(tuner.last_rejections)} candidate plan(s) "
                "rejected by the static analyzer:"
            )
            lines.extend(
                f"  {d.rule} [{d.driver}] {d.path}: {d.message}"
                for d in shown
            )
            if len(tuner.last_rejections) > len(shown):
                lines.append(
                    f"  ... and {len(tuner.last_rejections) - len(shown)}"
                    " more"
                )
        return "\n".join(lines), 0

    if cmd == "sweep":
        rows = []
        for (m, n, k), plan in tuned_sweep(tuner, shapes,
                                           threads=args.threads):
            fact = plan.factorization
            rows.append((
                f"{m}x{n}x{k}",
                plan.kernel_shape,
                "yes" if plan.packed_b else "no",
                "-" if fact is None else "x".join(str(f) for f in fact),
                f"{plan.gflops:.1f}",
                f"{plan.efficiency:.1%}",
                f"{plan.speedup_vs_heuristic:.2f}x",
            ))
        if cache.dirty:
            cache.save()
        return format_table(
            ("shape", "tile", "packB", "jc x ic x jr x ir",
             "GFLOPS", "eff", "vs fixed"),
            rows,
            title=f"tuned sweep ({args.threads} thread(s), "
            f"{machine.name})",
        ), 0

    if cmd == "export":
        text = cache.export_json()
        if args.output:
            import pathlib

            pathlib.Path(args.output).write_text(text + "\n")
            return f"wrote {args.output}", 0
        return text, 0

    if cmd == "merge":
        from .tuning import merge_payload, read_cache_payload
        from .util.errors import ConfigError

        lines = []
        merged = 0
        for path in args.files:
            try:
                report = merge_payload(
                    cache, read_cache_payload(path), force=args.force,
                    source=path,
                )
            except ConfigError as exc:
                return f"error: {exc}", 2
            lines.append(report.render())
            merged += report.added + report.improved
        if cache.dirty:
            cache.save()
        summary = cache.summary()
        lines.append(
            f"cache: {summary['entries']} entrie(s) @ {summary['path']} "
            f"({merged} merged in, fingerprint {summary['fingerprint']})"
        )
        return "\n".join(lines), 0

    # clear
    cache.clear()
    return f"cleared tuning cache {cache.path}", 0


def _run_serve(args) -> tuple:
    """The ``repro serve`` command body: (report text, exit code).

    ``--self-test`` runs the bounded in-process smoke (the
    ``make serve-smoke`` gate); without it the service listens on the
    TCP JSON-lines transport until a client sends ``{"cmd":
    "shutdown"}``.
    """
    from .serving import render_smoke, run_smoke

    if args.self_test:
        report = run_smoke(machine_name=args.machine, shards=args.shards)
        return (
            render_smoke(report, show_stats=args.stats),
            0 if report["ok"] else 1,
        )

    import asyncio
    import json

    from .blas.base import shared_analyzer
    from .pipeline import attach_steady_store, save_attached_stores
    from .serving import PlanService, serve_tcp
    from .tuning.warm import machine_by_name

    machine = machine_by_name(args.machine)
    attach_steady_store(shared_analyzer(machine))
    service = PlanService(
        machine, machine_name=args.machine,
        cache_path=(args.cache if args.cache is not None
                    else ".repro_tuning_cache.json"),
        shards=args.shards, tune_jobs=args.jobs,
    )
    warmed = service.warm_kernels()
    bound: List = []

    async def _serve():
        print(f"serving {args.machine} plans "
              f"({args.shards} cache shard(s), {warmed} kernel(s) "
              'warmed); send {"cmd": "shutdown"} to stop', flush=True)
        await serve_tcp(service, host=args.host, port=args.port,
                        bound=bound)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    save_attached_stores()
    lines = [f"served on {bound[0][0]}:{bound[0][1]}" if bound
             else "server never bound"]
    if args.stats:
        lines.append(json.dumps(service.stats_summary(), indent=2,
                                sort_keys=True))
    return "\n".join(lines), 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    machine = phytium2000plus()
    out: List[str] = []

    if args.command == "machine":
        out.append(machine_summary(machine))
    elif args.command == "machines":
        text, code = _run_machines(args)
        print(text)
        return code
    elif args.command in _FIGURES:
        out.append(_FIGURES[args.command](machine).render())
    elif args.command in _MULTI:
        for panel in _MULTI[args.command](machine).values():
            out.append(panel.render())
    elif args.command == "fig7":
        out.append(_render_fig7(machine))
    elif args.command == "table1":
        out.append(analysis.table1().render())
    elif args.command == "table2":
        out.append(analysis.table2(machine).render())
    elif args.command == "gemm":
        out.append(_run_gemm(machine, args))
    elif args.command == "trace":
        text, code = _run_trace(machine, args)
        print(text)
        return code
    elif args.command == "kernel":
        from .blas import shared_analyzer, shared_generator
        from .kernels import KernelSpec
        from .pipeline import diagnose_kernel

        spec = KernelSpec(
            args.mr, args.nr, unroll=args.unroll, style=args.style,
            contraction=not args.no_contraction, label="cli",
        )
        kernel = shared_generator().generate(spec)
        shared_analyzer(machine)  # warm the registry for consistency
        diagnosis = diagnose_kernel(
            kernel, machine.core,
            machine.core.flops_per_cycle(np.float32),
        )
        out.append(kernel.listing())
        out.append(diagnosis.render())
    elif args.command == "verify":
        from .analysis import failed_claims, verify_reproduction

        verdicts = verify_reproduction(machine)
        out.append(verdicts.render())
        failures = failed_claims(verdicts)
        out.append(
            f"\n{len(verdicts.rows) - len(failures)}/{len(verdicts.rows)} "
            "claims reproduce" + (f"; FAILING: {sorted(failures)}"
                                  if failures else "")
        )
    elif args.command == "lint":
        if getattr(args, "machine", "phytium2000plus") != "phytium2000plus":
            from .tuning.warm import MACHINE_FACTORIES

            machine = MACHINE_FACTORIES[args.machine]()
        text, code = _run_lint(machine, args)
        print(text)
        return code
    elif args.command == "audit":
        if getattr(args, "machine", "phytium2000plus") != "phytium2000plus":
            from .tuning.warm import MACHINE_FACTORIES

            machine = MACHINE_FACTORIES[args.machine]()
        text, code = _run_audit(machine, args)
        print(text)
        return code
    elif args.command == "tune":
        text, code = _run_tune(args)
        print(text)
        return code
    elif args.command == "serve":
        text, code = _run_serve(args)
        print(text)
        return code
    elif args.command == "report":
        from .analysis import generate_report

        text = generate_report(machine)
        if args.output:
            import pathlib

            pathlib.Path(args.output).write_text(text + "\n")
            out.append(f"wrote {args.output}")
        else:
            out.append(text)
    elif args.command == "sensitivity":
        from .analysis import smm_efficiency_metric, sweep_parameter

        values = [
            int(v) if float(v).is_integer() and "bytes_per_cycle"
            not in args.parameter else v
            for v in args.values
        ]
        fig = sweep_parameter(
            machine, args.parameter, values,
            smm_efficiency_metric(), figure_id=f"sens-{args.parameter}",
        )
        out.append(fig.render())
    elif args.command == "all":
        out.append(machine_summary(machine))
        out.append(analysis.table1().render())
        for name in sorted(_FIGURES):
            out.append(_FIGURES[name](machine).render())
        out.append(_render_fig7(machine))
        for name in sorted(_MULTI):
            for panel in _MULTI[name](machine).values():
                out.append(panel.render())
        out.append(analysis.table2(machine).render())
    print("\n\n".join(out))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
