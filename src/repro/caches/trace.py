"""Exact GEBP access traces, replayed through the reference cache simulator.

The analytic :class:`~repro.caches.model.GebpCacheModel` reasons about the
GEBP loop nest in closed form; this module generates the *actual* address
stream of a GEBP call — packed A slivers streamed per column tile, the
kc x nr B sliver walked per k-step, C tiles loaded and stored — and replays
it through :class:`~repro.caches.simulator.CacheHierarchy`.  It exists to
validate the analytic model (tests and the cache ablation benchmark) and to
let users inspect cache behaviour of custom tilings.

Traces are generated lazily; a 64^3 GEBP produces ~10^5 line-granular
accesses, fine for validation purposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from ..machine.config import MachineConfig
from ..util.errors import ConfigError
from ..util.validation import ceil_div, check_positive_int
from .simulator import CacheHierarchy

#: access record: (byte address, byte count, operand tag)
Access = Tuple[int, int, str]


@dataclass(frozen=True)
class GebpTraceConfig:
    """Geometry of one traced GEBP call."""

    mc: int
    nc: int
    kc: int
    mr: int
    nr: int
    itemsize: int = 4

    def __post_init__(self) -> None:
        for name in ("mc", "nc", "kc", "mr", "nr", "itemsize"):
            check_positive_int(getattr(self, name), name, ConfigError)

    @property
    def a_bytes(self) -> int:
        """Packed A block footprint (padded to mr slivers)."""
        return ceil_div(self.mc, self.mr) * self.mr * self.kc * self.itemsize

    @property
    def b_bytes(self) -> int:
        """Packed B panel footprint (padded to nr slivers)."""
        return self.kc * ceil_div(self.nc, self.nr) * self.nr * self.itemsize

    @property
    def c_bytes(self) -> int:
        """C panel footprint."""
        return self.mc * self.nc * self.itemsize


def gebp_access_stream(
    cfg: GebpTraceConfig,
    a_base: int = 0,
    b_base: int = -1,
    c_base: int = -1,
) -> Iterator[Access]:
    """The GEBP loop nest's memory accesses, in execution order.

    Layout mirrors :mod:`repro.packing`: A-tilde holds mr x kc slivers
    back to back (each sliver column-major within itself), B-tilde holds
    kc x nr slivers, C is column-major with leading dimension mc.
    """
    es = cfg.itemsize
    if b_base < 0:
        b_base = a_base + cfg.a_bytes
    if c_base < 0:
        c_base = b_base + cfg.b_bytes

    n_row_tiles = ceil_div(cfg.mc, cfg.mr)
    n_col_tiles = ceil_div(cfg.nc, cfg.nr)
    a_sliver_bytes = cfg.mr * cfg.kc * es
    b_sliver_bytes = cfg.kc * cfg.nr * es

    for j in range(n_col_tiles):
        b_sliver = b_base + j * b_sliver_bytes
        for i in range(n_row_tiles):
            a_sliver = a_base + i * a_sliver_bytes
            for k in range(cfg.kc):
                # one mr-column of A-tilde (contiguous in the packed buffer)
                yield (a_sliver + k * cfg.mr * es, cfg.mr * es, "A")
                # one nr-row of B-tilde (contiguous)
                yield (b_sliver + k * cfg.nr * es, cfg.nr * es, "B")
            # C tile: load + store mr x nr (column-major, ld = mc)
            for jj in range(cfg.nr):
                col = j * cfg.nr + jj
                if col >= cfg.nc:
                    break
                row0 = i * cfg.mr
                rows = min(cfg.mr, cfg.mc - row0)
                addr = c_base + (col * cfg.mc + row0) * es
                yield (addr, rows * es, "C")
                yield (addr, rows * es, "C")  # store after update


def replay_gebp(
    machine: MachineConfig,
    cfg: GebpTraceConfig,
    warm: bool = False,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Replay one GEBP through a private L1 + L2 hierarchy.

    Returns per-operand access and L1-miss counts plus overall hierarchy
    miss rates.  ``warm=True`` runs the trace twice and reports the second
    pass (the paper's repeated-measurement setting).
    """
    hier = CacheHierarchy(
        machine.l1d, machine.l2,
        dram_latency=machine.numa.local_dram_latency, seed=seed,
    )
    passes = 2 if warm else 1
    stats: Dict[str, Dict[str, float]] = {}
    for run in range(passes):
        stats = {tag: {"accesses": 0, "l1_misses": 0}
                 for tag in ("A", "B", "C")}
        l1_before = hier.l1.stats.misses
        for addr, nbytes, tag in gebp_access_stream(cfg):
            before = hier.l1.stats.misses
            hier.access(addr, nbytes)
            stats[tag]["accesses"] += 1
            stats[tag]["l1_misses"] += hier.l1.stats.misses - before
        stats["total"] = {
            "accesses": sum(s["accesses"] for t, s in stats.items()
                            if t != "total"),
            "l1_misses": hier.l1.stats.misses - l1_before,
        }
    stats["rates"] = hier.miss_rates()
    return stats
