"""Set-associative cache simulator.

This is the *reference* cache model: a faithful tag-array simulation with
LRU or pseudo-random replacement, used by unit tests, the cache-behaviour
microbenchmarks, and to validate the analytic :mod:`repro.caches.model`
that the GEMM drivers use for speed.

Addresses are plain integers (byte addresses in a flat simulated address
space, see :mod:`repro.memlayout.addressspace`).  Accesses are counted per
line; ``access_range`` walks a strided region the way a packing loop or a
micro-kernel sliver read would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..machine.config import CacheConfig
from ..util.errors import ConfigError
from ..util.rng import derive_seed


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    accesses: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hits(self) -> int:
        """Number of hits."""
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        """Misses per access (0 when idle)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def reset(self) -> None:
        """Zero all counters."""
        self.accesses = 0
        self.misses = 0
        self.evictions = 0


class CacheSim:
    """One physical cache instance (optionally shared by several cores)."""

    def __init__(self, config: CacheConfig, seed: int = 0) -> None:
        self.config = config
        self.n_sets = config.n_sets
        self.assoc = config.associativity
        self.line = config.line_bytes
        self._line_shift = int(config.line_bytes).bit_length() - 1
        # tags[set, way]; -1 = invalid
        self._tags = np.full((self.n_sets, self.assoc), -1, dtype=np.int64)
        # LRU stamp per way (higher = more recent); only used for LRU
        self._stamps = np.zeros((self.n_sets, self.assoc), dtype=np.int64)
        self._clock = 0
        self._rng = np.random.default_rng(derive_seed(seed, "cache", config.name))
        self.stats = CacheStats()

    # -- core operations -----------------------------------------------------

    def line_of(self, addr: int) -> int:
        """Line index (address >> line bits)."""
        if addr < 0:
            raise ConfigError(f"negative address {addr}")
        return addr >> self._line_shift

    def access_line(self, line_addr: int) -> bool:
        """Access one line; returns True on hit.  Allocates on miss."""
        set_idx = line_addr % self.n_sets
        tag = line_addr // self.n_sets
        self.stats.accesses += 1
        self._clock += 1
        row = self._tags[set_idx]
        ways = np.nonzero(row == tag)[0]
        if ways.size:
            self._stamps[set_idx, ways[0]] = self._clock
            return True
        self.stats.misses += 1
        # choose a victim
        empty = np.nonzero(row == -1)[0]
        if empty.size:
            victim = int(empty[0])
        else:
            self.stats.evictions += 1
            if self.config.replacement == "lru":
                victim = int(np.argmin(self._stamps[set_idx]))
            else:  # pseudo-random, the Phytium 2000+ L2 policy
                victim = int(self._rng.integers(0, self.assoc))
        self._tags[set_idx, victim] = tag
        self._stamps[set_idx, victim] = self._clock
        return False

    def access(self, addr: int, nbytes: int = 4) -> int:
        """Access ``nbytes`` at ``addr``; returns number of line misses."""
        if nbytes <= 0:
            raise ConfigError(f"nbytes must be positive, got {nbytes}")
        first = self.line_of(addr)
        last = self.line_of(addr + nbytes - 1)
        misses = 0
        for line_addr in range(first, last + 1):
            if not self.access_line(line_addr):
                misses += 1
        return misses

    def access_range(self, base: int, count: int, stride: int, width: int = 4) -> int:
        """Access ``count`` elements of ``width`` bytes, ``stride`` bytes apart.

        Models one packing-loop walk or one sliver read.  Returns misses.
        """
        if count < 0:
            raise ConfigError(f"count must be >= 0, got {count}")
        misses = 0
        addr = base
        for _ in range(count):
            misses += self.access(addr, width)
            addr += stride
        return misses

    def contains_line(self, line_addr: int) -> bool:
        """True when the line is currently resident (no state change)."""
        set_idx = line_addr % self.n_sets
        tag = line_addr // self.n_sets
        return bool(np.any(self._tags[set_idx] == tag))

    def resident_lines(self) -> int:
        """Number of valid lines currently held."""
        return int(np.count_nonzero(self._tags != -1))

    def flush(self) -> None:
        """Invalidate all lines (counters are kept)."""
        self._tags.fill(-1)
        self._stamps.fill(0)


class CacheHierarchy:
    """A private L1 in front of a (possibly shared) L2.

    ``access`` returns the modeled latency in cycles for one access, using
    the per-level hit latencies and a DRAM latency for L2 misses.  The GEMM
    drivers do not use this directly (too slow at scale); the cache-model
    validation benchmark does.
    """

    def __init__(
        self,
        l1_config: CacheConfig,
        l2_config: CacheConfig,
        dram_latency: int = 150,
        seed: int = 0,
        shared_l2: Optional[CacheSim] = None,
    ) -> None:
        self.l1 = CacheSim(l1_config, seed=derive_seed(seed, "l1"))
        self.l2 = shared_l2 if shared_l2 is not None else CacheSim(
            l2_config, seed=derive_seed(seed, "l2")
        )
        self.dram_latency = dram_latency

    def access(self, addr: int, nbytes: int = 4) -> float:
        """Access and return latency in cycles (line-granular)."""
        first = self.l1.line_of(addr)
        last = self.l1.line_of(addr + nbytes - 1)
        latency = 0.0
        for line_addr in range(first, last + 1):
            if self.l1.access_line(line_addr):
                latency = max(latency, float(self.l1.config.hit_latency))
            elif self.l2.access_line(line_addr):
                latency = max(latency, float(self.l2.config.hit_latency))
            else:
                latency = max(latency, float(self.dram_latency))
        return latency

    def miss_rates(self) -> dict:
        """Convenience: miss rate per level."""
        return {"l1": self.l1.stats.miss_rate, "l2": self.l2.stats.miss_rate}


def make_shared_l2(config: CacheConfig, seed: int = 0) -> CacheSim:
    """A shared L2 instance for several :class:`CacheHierarchy` front-ends."""
    return CacheSim(config, seed=derive_seed(seed, "shared-l2"))
