"""Analytic cache-cost model used by the GEMM drivers.

Tracing every element access of a GEMM through :class:`CacheSim` would be
orders of magnitude too slow in Python, and is unnecessary: blocked GEMM has
a completely regular reuse structure, which is why analytical modeling is
standard for BLIS-style libraries (Low et al., TOMS 2016 — paper ref [35]).

The model answers two questions per GEBP phase:

1. how many cache lines miss in L1 / L2 (compulsory + capacity, with a
   replacement-policy inflation factor for the pseudo-random shared L2);
2. what *average extra latency per load instruction* the micro-kernel sees,
   which couples the cache model to the pipeline scheduler
   (:class:`repro.pipeline.SteadyStateAnalyzer` takes it as
   ``extra_load_cycles``).

Validated against the reference :class:`repro.caches.CacheSim` by
``tests/test_cache_model_validation.py`` and the cache ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.config import MachineConfig
from ..util.errors import ConfigError
from ..util.validation import ceil_div

#: Fraction of a sequential stream's fill latency hidden by the hardware
#: prefetchers.  Streaming loads (packed panels) are nearly free; strided /
#: irregular walks (unpacked sources) hide much less.
SEQUENTIAL_PREFETCH_OVERLAP = 0.85
STRIDED_PREFETCH_OVERLAP = 0.30
#: Packed-panel streams inside the micro-kernel are the best case of all:
#: perfectly sequential, known-ahead addresses, and dozens of independent
#: FMAs per line to overlap with — Goto's algorithm is designed around
#: making exactly this stream free.
KERNEL_STREAM_OVERLAP = 0.95

#: Conflict-miss inflation of the pseudo-random-replacement shared L2,
#: relative to ideal LRU, when multiple cores contend (paper Sec. III-D
#: observation (1)).  Calibrated against CacheSim in the validation tests.
RANDOM_REPLACEMENT_INFLATION = 1.30


@dataclass(frozen=True)
class PhaseCacheCosts:
    """Cache behaviour of one phase (kernel or packing) of a GEBP call."""

    loads: int  # load instructions issued by the phase
    l1_miss_lines: float  # lines filled from L2
    l2_miss_lines: float  # lines filled from DRAM
    extra_load_cycles: float  # average extra latency per load instruction
    stall_cycles: float  # total unhidden memory stall cycles
    dram_bytes: float = 0.0  # bytes pulled from DRAM (bandwidth accounting)

    def merged_with(self, other: "PhaseCacheCosts") -> "PhaseCacheCosts":
        """Combine two phases (weighted by load counts)."""
        loads = self.loads + other.loads
        stall = self.stall_cycles + other.stall_cycles
        return PhaseCacheCosts(
            loads=loads,
            l1_miss_lines=self.l1_miss_lines + other.l1_miss_lines,
            l2_miss_lines=self.l2_miss_lines + other.l2_miss_lines,
            extra_load_cycles=(stall / loads) if loads else 0.0,
            stall_cycles=stall,
            dram_bytes=self.dram_bytes + other.dram_bytes,
        )


def lines_of(nbytes: float, line_bytes: int) -> float:
    """Number of cache lines spanned by ``nbytes`` of contiguous data."""
    if nbytes < 0:
        raise ConfigError(f"nbytes must be >= 0, got {nbytes}")
    return nbytes / line_bytes


class GebpCacheModel:
    """Cache costs of the inner GEBP computation and the packing loops."""

    def __init__(
        self,
        machine: MachineConfig,
        active_l2_sharers: int = 1,
        numa_remote_fraction: float = 0.0,
        bandwidth_share: float = 0.0,
    ) -> None:
        """``active_l2_sharers``: cores concurrently using one shared L2
        (1 for single-thread runs, up to ``l2.shared_by`` under full
        multithreading).  ``numa_remote_fraction``: fraction of DRAM-level
        fills served by a remote panel's memory controller.
        ``bandwidth_share``: DRAM bytes/cycle available to *one* core in the
        current run (0 = a single core owning its whole panel channel)."""
        if not 1 <= active_l2_sharers <= machine.l2.shared_by:
            raise ConfigError(
                f"active_l2_sharers must be in [1, {machine.l2.shared_by}], "
                f"got {active_l2_sharers}"
            )
        if not 0.0 <= numa_remote_fraction <= 1.0:
            raise ConfigError(
                f"numa_remote_fraction must be in [0, 1], got {numa_remote_fraction}"
            )
        if bandwidth_share < 0:
            raise ConfigError(
                f"bandwidth_share must be >= 0, got {bandwidth_share}"
            )
        self.machine = machine
        self.active_l2_sharers = active_l2_sharers
        self.numa_remote_fraction = numa_remote_fraction
        self.bandwidth_share = (
            bandwidth_share or machine.numa.dram_bytes_per_cycle
        )

    # -- derived machine quantities -------------------------------------------

    @property
    def effective_l2_bytes(self) -> float:
        """L2 capacity available to one core under the current sharing."""
        return self.machine.l2.size_bytes / self.active_l2_sharers

    @property
    def l2_fill_penalty(self) -> float:
        """Unoverlapped cycles to fill one line from L2 into L1."""
        return float(self.machine.l2.hit_latency - self.machine.l1d.hit_latency)

    @property
    def dram_fill_penalty(self) -> float:
        """Unoverlapped cycles to fill one line from DRAM into L2."""
        local = self.machine.numa.local_dram_latency
        remote = self.machine.numa.remote_dram_latency
        dram = (
            (1.0 - self.numa_remote_fraction) * local
            + self.numa_remote_fraction * remote
        )
        return float(dram - self.machine.l2.hit_latency)

    def _l2_inflation(self) -> float:
        """Conflict inflation of the shared pseudo-random L2 under contention."""
        if self.machine.l2.replacement != "random" or self.active_l2_sharers == 1:
            return 1.0
        # grows mildly with the number of contending cores
        extra = (RANDOM_REPLACEMENT_INFLATION - 1.0) * (
            (self.active_l2_sharers - 1) / (self.machine.l2.shared_by - 1)
        )
        return 1.0 + extra

    # -- kernel phase ----------------------------------------------------------

    def kernel_phase(
        self,
        mc: int,
        nc: int,
        kc: int,
        mr: int,
        nr: int,
        itemsize: int,
        a_resident: str = "l2",
        b_resident: str = "l2",
        simd_lanes: int = 4,
        b_shared_by: int = 1,
    ) -> PhaseCacheCosts:
        """Cache costs of one GEBP call: an (mc x kc) A-block times a
        (kc x nc) B-panel updating an (mc x nc) C-panel.

        ``a_resident`` / ``b_resident``: where the packed operand lives when
        the kernel starts ('l1', 'l2' or 'mem').  For SMM the whole problem
        often fits in L1/L2, which is exactly why kernel efficiency can reach
        the 90 %+ the paper measures.  ``b_shared_by``: cores in one L2
        cluster reading the *same* packed B panel — one DRAM fill serves all
        of them, amortizing the bandwidth charge.
        """
        _check_residency(a_resident, "a_resident")
        _check_residency(b_resident, "b_resident")
        if b_shared_by < 1:
            raise ConfigError(f"b_shared_by must be >= 1, got {b_shared_by}")
        line = self.machine.l1d.line_bytes
        l1_bytes = self.machine.l1d.size_bytes

        fa = mc * kc * itemsize  # packed A block
        fb = kc * nc * itemsize  # packed B panel
        fb_sliver = kc * nr * itemsize  # one B sliver (L1-resident by design)
        fc = mc * nc * itemsize

        n_row_tiles = ceil_div(mc, mr)
        n_col_tiles = ceil_div(nc, nr)

        # ---- L1 behaviour ----
        # One B sliver is reused by all row tiles of the j-iteration; its
        # lines miss once per j-iteration (unless the whole B panel stays in
        # L1 across iterations, the small-matrix case).
        b_panel_lines = lines_of(fb, line)
        fits_all_l1 = (fa + fb + fc) <= 0.75 * l1_bytes
        if fits_all_l1 and a_resident == "l1" and b_resident == "l1":
            # warm SMM: the whole working set already sits in L1
            a_l1 = b_l1 = c_l1 = 0.0
        elif fits_all_l1:
            # Everything lives in L1 after first touch: compulsory only.
            a_l1 = lines_of(fa, line)
            b_l1 = b_panel_lines
            c_l1 = lines_of(fc, line)
        else:
            a_fits_l1 = (fa + fb_sliver * 2) <= 0.75 * l1_bytes
            # A block: re-streamed from L2 once per column tile unless it
            # stays L1-resident.
            a_l1 = lines_of(fa, line) * (1 if a_fits_l1 else n_col_tiles)
            b_l1 = b_panel_lines  # each sliver missed once, reused mc/mr times
            c_l1 = lines_of(fc, line)  # C tiles loaded+stored once per call

        # ---- L2 behaviour ----
        a_l2 = lines_of(fa, line) if a_resident == "mem" else 0.0
        b_l2 = (
            lines_of(fb, line) / b_shared_by if b_resident == "mem" else 0.0
        )
        if not fits_all_l1 and (fa + fb) > 0.75 * self.effective_l2_bytes:
            # capacity overflow: part of the panel re-fills from DRAM per pass
            overflow = 1.0 - 0.75 * self.effective_l2_bytes / (fa + fb)
            b_l2 += b_panel_lines * overflow / b_shared_by
        inflation = self._l2_inflation()
        a_l2 *= inflation
        b_l2 *= inflation

        l1_misses = a_l1 + b_l1 + c_l1
        l2_misses = a_l2 + b_l2

        # ---- load-instruction count of the kernel phase ----
        # Per k-step and tile: mr/lanes A vector loads + nr B element loads
        # (B is loaded as scalars/pairs in the library kernels).
        a_loads = n_row_tiles * n_col_tiles * kc * ceil_div(mr, simd_lanes)
        b_loads = n_row_tiles * n_col_tiles * kc * ceil_div(nr, 2)  # ldp pairs
        c_loads = n_row_tiles * n_col_tiles * ceil_div(mr, simd_lanes) * nr
        loads = a_loads + b_loads + c_loads

        stall = (
            l1_misses * self.l2_fill_penalty * (1.0 - KERNEL_STREAM_OVERLAP)
            + l2_misses * self.dram_fill_penalty
            * (1.0 - SEQUENTIAL_PREFETCH_OVERLAP)
        )
        extra = stall / loads if loads else 0.0
        return PhaseCacheCosts(
            loads=loads,
            l1_miss_lines=l1_misses,
            l2_miss_lines=l2_misses,
            extra_load_cycles=extra,
            stall_cycles=stall,
            dram_bytes=l2_misses * line,
        )

    def dram_floor_cycles(self, phase: PhaseCacheCosts) -> float:
        """Bandwidth lower bound: cycles to stream the phase's DRAM traffic
        through this core's share of the memory channels."""
        if phase.dram_bytes <= 0:
            return 0.0
        return phase.dram_bytes / self.bandwidth_share

    def strided_b_extra_stall(self, kc: int, nr: int, itemsize: int) -> float:
        """Extra stall of reading an *unpacked* B sliver inside a kernel.

        The paper's Fig. 8 premise: without edge packing the accesses to the
        edge sliver Be are discontiguous — effectively one cache line per
        element instead of ``line/itemsize`` elements per line, with poor
        prefetch.  Returns the additional unhidden fill cycles for one
        kernel call covering ``kc`` k-steps of an ``nr``-wide sliver.
        """
        if kc <= 0 or nr <= 0:
            raise ConfigError(f"invalid sliver extents kc={kc}, nr={nr}")
        line = self.machine.l1d.line_bytes
        per_line = max(line // itemsize, 1)
        extra_lines = kc * nr * (1.0 - 1.0 / per_line)
        return (
            extra_lines
            * self.l2_fill_penalty
            * (1.0 - STRIDED_PREFETCH_OVERLAP)
        )

    # -- packing phase -----------------------------------------------------------

    def packing_phase(
        self,
        rows: int,
        cols: int,
        itemsize: int,
        source_contiguous: bool,
        source_resident: str = "mem",
    ) -> PhaseCacheCosts:
        """Cache costs of packing an (rows x cols) operand into a panel buffer.

        ``source_contiguous``: True when the packing walk follows the source
        storage order (e.g. packing B column panels from a column-major B),
        False for the transposed walk (strided, poor prefetch).
        """
        _check_residency(source_resident, "source_resident")
        line = self.machine.l1d.line_bytes
        nbytes = rows * cols * itemsize
        # an L1-resident source costs no fills; the destination buffer pays
        # write-allocate fills, but those are sequential regardless of the
        # source walk shape
        src_lines = 0.0 if source_resident == "l1" else lines_of(nbytes, line)
        dst_lines = lines_of(nbytes, line)

        src_overlap = (
            SEQUENTIAL_PREFETCH_OVERLAP
            if source_contiguous
            else STRIDED_PREFETCH_OVERLAP
        )
        # strided walks touch each line multiple times but we count unique
        # line fills; the lost prefetch overlap is what hurts.
        l1_misses = src_lines + dst_lines
        l2_misses = 0.0
        if source_resident == "mem":
            l2_misses += src_lines * self._l2_inflation()

        loads = max(rows * cols // 2, 1)  # paired element loads
        stall = (
            src_lines * self.l2_fill_penalty * (1.0 - src_overlap)
            + dst_lines * self.l2_fill_penalty
            * (1.0 - SEQUENTIAL_PREFETCH_OVERLAP)
            + l2_misses * self.dram_fill_penalty * (1.0 - src_overlap)
        )
        return PhaseCacheCosts(
            loads=loads,
            l1_miss_lines=l1_misses,
            l2_miss_lines=l2_misses,
            extra_load_cycles=stall / loads,
            stall_cycles=stall,
            dram_bytes=l2_misses * line,
        )


def _check_residency(value: str, name: str) -> None:
    if value not in ("l1", "l2", "mem"):
        raise ConfigError(f"{name} must be 'l1', 'l2' or 'mem', got {value!r}")
