"""Cache models: reference set-associative simulator + analytic GEBP model."""

from .model import (
    RANDOM_REPLACEMENT_INFLATION,
    SEQUENTIAL_PREFETCH_OVERLAP,
    STRIDED_PREFETCH_OVERLAP,
    GebpCacheModel,
    PhaseCacheCosts,
    lines_of,
)
from .simulator import CacheHierarchy, CacheSim, CacheStats, make_shared_l2
from .trace import GebpTraceConfig, gebp_access_stream, replay_gebp

__all__ = [
    "CacheSim",
    "CacheStats",
    "CacheHierarchy",
    "make_shared_l2",
    "GebpTraceConfig",
    "gebp_access_stream",
    "replay_gebp",
    "GebpCacheModel",
    "PhaseCacheCosts",
    "lines_of",
    "SEQUENTIAL_PREFETCH_OVERLAP",
    "STRIDED_PREFETCH_OVERLAP",
    "RANDOM_REPLACEMENT_INFLATION",
]
