"""Structural plan identity: canonical keys, fingerprints, hash-consing.

One module owns the notion of "two plans are the same": the verifier's
memo (PR 6) and the batch pricing layer key their caches off the
canonical forms built here, so a cache can never confuse two plans the
other layer would distinguish.

* :func:`canonical_node` / :func:`canonical_plan_body` — hashable,
  structure-preserving identity of an op tree / a whole plan.  Keys are
  rebuilt from *current* field values on every call, so in-place node
  mutation (the lint self-checks mutate real plans) always changes the
  key and can never resurrect a stale cached verdict or price.
* :func:`machine_token` / :func:`context_token` — stable string identity
  of the machine model / the full :class:`~repro.plan.engine.PricingContext`
  a plan is priced against.  Pricing caches key on the context token:
  two structurally identical plans priced against different cache
  sharing, packing models or JIT factories never share an entry.
* :func:`node_fingerprint` / :func:`plan_fingerprint` — the same
  identities digested to 16 hex chars (stable across processes for
  logging and persisted stores).
* :class:`InternPool` — hash-consing of op subtrees: structurally equal
  nodes across an M-N-K sweep intern to one representative, so
  per-subtree work (pricing, verification) runs once per *structure*
  rather than once per plan.
* :class:`BoundedMemo` — the bounded LRU with hit/miss counters every
  cache in the verify and batch layers uses.

Nothing here imports the engine or verifier; both import this module.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

#: field values hashed verbatim in canonical keys
PRIMITIVES = (type(None), bool, int, float, str)

#: IR fields added *after* golden fingerprints were frozen, with the
#: sentinel value meaning "legacy behavior".  :func:`canonical_node`
#: omits such a field while it holds its sentinel, so every pre-existing
#: plan keeps its canonical form (and fingerprint) bit-for-bit; any
#: non-sentinel value — e.g. per-strip core-class tags on a
#: heterogeneous machine — folds into structural identity as usual.
LEGACY_OMIT_DEFAULTS: Dict[str, Any] = {
    "core_classes": (),
}


def canonical_value(value: Any) -> Any:
    """Hashable, structure-preserving token for one node field value."""
    if isinstance(value, PRIMITIVES):
        return value
    if isinstance(value, (tuple, list)):
        return tuple(canonical_value(v) for v in value)
    return repr(value)


def canonical_node(node: Any) -> Tuple:
    """Recursive structural identity of one op-tree node."""
    kind = getattr(node, "kind", node.__class__.__name__)
    fields: List[Tuple[str, Any]] = []
    if dataclasses.is_dataclass(node):
        for f in dataclasses.fields(node):
            if f.name in ("children", "subplans"):
                continue
            value = getattr(node, f.name)
            if (f.name in LEGACY_OMIT_DEFAULTS
                    and value == LEGACY_OMIT_DEFAULTS[f.name]):
                continue
            fields.append((f.name, canonical_value(value)))
    children = tuple(
        canonical_node(c) for c in getattr(node, "children", ())
    )
    subplans = getattr(node, "subplans", None)
    if isinstance(subplans, dict):
        subs = tuple(
            (canonical_value(key), canonical_plan_body(sub))
            for key, sub in sorted(subplans.items())
        )
    elif isinstance(subplans, (tuple, list)):
        subs = tuple(canonical_plan_body(sub) for sub in subplans)
    else:
        subs = ()
    return (str(kind), tuple(fields), children, subs)


def canonical_plan_body(plan: Any) -> Tuple:
    """Structural identity of a plan: analysis-relevant meta + tree."""
    meta = plan.meta if isinstance(plan.meta, dict) else {}
    return (
        canonical_value(meta.get("driver")),
        canonical_value(meta.get("shape")),
        meta.get("threads") if isinstance(meta.get("threads"), int)
        else None,
        meta.get("useful_flops")
        if isinstance(meta.get("useful_flops"), int) else None,
        canonical_value(meta.get("batch")),
        canonical_value(meta.get("provenance")),
        canonical_node(plan.root),
    )


# ---------------------------------------------------------------------------
# machine / context identity tokens
# ---------------------------------------------------------------------------
#
# Model reprs are stable (the machine config and kernel specs are frozen
# dataclasses; model classes expose only scalar configuration publicly)
# but expensive, so tokens are cached by object id.  The strong reference
# held next to each token keeps the id from being reused by a new object.

_TOKENS: "OrderedDict[int, Tuple[Any, str]]" = OrderedDict()
_TOKEN_LIMIT = 8192


def _cached_token(obj: Any, build) -> str:
    cached = _TOKENS.get(id(obj))
    if cached is not None and cached[0] is obj:
        return cached[1]
    token = build(obj)
    _TOKENS[id(obj)] = (obj, token)
    while len(_TOKENS) > _TOKEN_LIMIT:
        _TOKENS.popitem(last=False)
    return token


def _model_token(obj: Any, depth: int = 0) -> str:
    """Stable configuration identity of one model object.

    Dataclasses and primitives token as their reprs; other model objects
    token as their class name plus their public, non-callable attributes
    (counters named ``stats`` and underscore-prefixed caches are state,
    not configuration, and are skipped).
    """
    if obj is None or isinstance(obj, PRIMITIVES):
        return repr(obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        # not repr(obj): a dataclass holding model objects would embed
        # their default `<... at 0x...>` reprs, making the token
        # process-specific and useless as a persistent-store key.
        def build_dc(target: Any) -> str:
            parts = [
                f"{f.name}={_model_token(getattr(target, f.name), depth + 1)}"
                for f in dataclasses.fields(target)
            ]
            return f"{type(target).__qualname__}({', '.join(parts)})"

        return _cached_token(obj, build_dc)
    cls = type(obj).__qualname__
    attrs = getattr(obj, "__dict__", None)
    if attrs is None or depth >= 3:
        return f"{cls}:{obj!r}"

    def build(target: Any) -> str:
        parts = []
        for name in sorted(vars(target)):
            if name.startswith("_") or name == "stats":
                continue
            value = getattr(target, name)
            if callable(value):
                continue
            parts.append(f"{name}={_model_token(value, depth + 1)}")
        return f"{cls}({', '.join(parts)})"

    return _cached_token(obj, build)


def machine_token(machine: Any) -> str:
    """Stable identity string of one machine model (repr, id-cached)."""
    if machine is None:
        return "<no-machine>"
    return _cached_token(machine, repr)


def model_token(obj: Any) -> str:
    """Public entry to :func:`_model_token` for non-plan cost models."""
    return _model_token(obj)


def context_machine_token(ctx: Any) -> str:
    """The machine token of a plan's pricing context (verifier key)."""
    return machine_token(getattr(ctx, "machine", None))


def context_token(ctx: Any) -> str:
    """Full identity of a :class:`PricingContext`'s model bindings.

    Everything the pricing of a node can read from the context is in the
    token; two contexts with equal tokens price any node identically.
    """
    if ctx is None:
        return "<no-context>"
    return _cached_token(ctx, lambda c: _model_token(c))


def _digest(raw: str) -> str:
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]


def node_fingerprint(node: Any, ctx: Any = None) -> str:
    """16-hex digest of one subtree's structure (optionally with context)."""
    if ctx is None:
        return _digest(repr(canonical_node(node)))
    return _digest(repr((context_token(ctx), canonical_node(node))))


def plan_fingerprint(plan: Any, label: Optional[str] = None) -> str:
    """Stable 16-hex-digit identity of (plan structure, machine).

    Two plans share a fingerprint iff the analyzer would produce the
    same report for both — the verification memo key, digested.
    """
    raw = repr(verification_key(plan, label))
    return _digest(raw)


def verification_key(plan: Any, label: Optional[str] = None) -> Tuple:
    """The verifier's memo key: (label, machine, canonical plan body)."""
    return (label, context_machine_token(plan.context),
            canonical_plan_body(plan))


def _subplan_context_tokens(node: Any, out: List[str]) -> None:
    """Context tokens of nested sub-plans, in deterministic walk order.

    Critical-path and merge sub-plans carry their *own* contexts (the
    multithreaded lowerings bind per-thread cache sharing), which the
    canonical body deliberately omits — pricing keys must include them.
    """
    for child in getattr(node, "children", ()):
        _subplan_context_tokens(child, out)
    subplans = getattr(node, "subplans", None)
    if isinstance(subplans, dict):
        subs = [sub for _, sub in sorted(subplans.items())]
    elif isinstance(subplans, (tuple, list)):
        subs = list(subplans)
    else:
        subs = []
    for sub in subs:
        out.append(context_token(sub.context))
        _subplan_context_tokens(sub.root, out)


def nested_context_tokens(node: Any) -> Tuple[str, ...]:
    """Context tokens of every sub-plan under ``node``, in walk order."""
    out: List[str] = []
    _subplan_context_tokens(node, out)
    return tuple(out)


def pricing_key(node: Any, ctx: Any, useful_flops: Any = None,
                canonical: Optional[Tuple] = None) -> Tuple:
    """Memo key for pricing one subtree under one context.

    ``(context token, nested sub-plan context tokens, canonical
    subtree)`` — everything :meth:`Engine._node` can read.  The optional
    ``useful_flops`` pins plan-level metadata for whole-plan keys;
    ``canonical`` reuses an already-computed :func:`canonical_node`.
    """
    return (
        context_token(ctx), nested_context_tokens(node),
        useful_flops if isinstance(useful_flops, int) else None,
        canonical if canonical is not None else canonical_node(node),
    )


# ---------------------------------------------------------------------------
# bounded LRU + hash-consing pool
# ---------------------------------------------------------------------------


class BoundedMemo:
    """Bounded LRU with hit/miss counters (the shape of every plan cache).

    Thread-safe: the serving layer prices plans from a background
    tuning thread while the event loop prices its own batches, so the
    LRU bookkeeping (``move_to_end`` + ``popitem``, which corrupt an
    :class:`OrderedDict` under concurrent mutation) runs under a lock.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._store: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Any) -> Optional[Any]:
        """The cached value (refreshing its LRU slot), or None."""
        with self._lock:
            value = self._store.get(key)
            if value is None:
                self.misses += 1
                return None
            self._store.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Any, value: Any) -> None:
        """Insert a value, evicting least-recently-used past maxsize."""
        with self._lock:
            self._store[key] = value
            self._store.move_to_end(key)
            while len(self._store) > self.maxsize:
                self._store.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._store.clear()
            self.hits = self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def info(self) -> Dict[str, int]:
        """Counter snapshot: hits, misses, size, maxsize."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._store),
            "maxsize": self.maxsize,
        }


class InternPool:
    """Hash-consing of plan subtrees by structural identity.

    :meth:`intern` returns one representative node per structure: the
    first node seen with a given canonical form.  Callers must treat
    interned nodes as read-only (they are shared).  Two nodes differing
    in *any* field — including scalar loop-trip counts like ``kc`` or
    per-thread ``chunks`` — have different canonical forms and never
    merge; the property tests pin this.
    """

    def __init__(self, maxsize: int = 16384) -> None:
        self.maxsize = maxsize
        self.requests = 0
        self._store: "OrderedDict[Tuple, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def intern(self, node: Any) -> Tuple[Any, Tuple]:
        """(representative node, canonical key) for ``node``."""
        key = canonical_node(node)
        with self._lock:
            self.requests += 1
            kept = self._store.get(key)
            if kept is not None:
                self._store.move_to_end(key)
                return kept, key
            self._store[key] = node
            while len(self._store) > self.maxsize:
                self._store.popitem(last=False)
            return node, key

    @property
    def unique(self) -> int:
        """Distinct structures currently interned."""
        return len(self._store)

    def clear(self) -> None:
        """Drop every interned representative and reset counters."""
        with self._lock:
            self._store.clear()
            self.requests = 0

    def info(self) -> Dict[str, int]:
        """Counter snapshot: requests, unique structures, shared hits."""
        shared = self.requests - self.unique
        return {
            "requests": self.requests,
            "unique": self.unique,
            "shared": max(shared, 0),
            "maxsize": self.maxsize,
        }
