"""Batch pricing: hash-consed subtrees, memoized charge tapes, grids.

The single-plan :class:`~repro.plan.engine.Engine` walks an op tree and
accumulates float charges into :class:`~repro.timing.breakdown.GemmTiming`
buckets.  Across an M-N-K sweep the same subtrees recur (identical
PackOp/GebpOp/JitSweepOp bodies show up under many shapes), so the batch
layer prices each *structure* once and replays the result everywhere:

* every top-level subtree is hash-consed through an
  :class:`~repro.plan.fingerprint.InternPool` and priced at most once
  per (subtree structure, pricing-context token);
* the memoized value is a **charge tape** — the exact sequence of
  ``(bucket, cycles)`` / executed-flop mutations the engine applied —
  not the summed buckets.  Replaying the tape performs the same float
  additions in the same order as a fresh walk, so batch results are
  bit-for-bit equal to single-plan pricing.  (Caching sums instead
  would re-associate the additions: ``(a + b) + c != a + (b + c)`` in
  floats, and the golden-parity suite would catch it.)
* :class:`ShapeGridPricer` prices a whole shape grid in one call and
  returns numpy arrays over the grid (per-bucket cycles, flops,
  efficiency) — the vectorized sweep form the figure benchmarks and the
  ``repro lint --plans`` target consume.

Cache keys come from :mod:`repro.plan.fingerprint`: the context token
covers every model binding pricing can read (machine, cache sharing,
packing model, JIT factory, dtype width), so a machine or configuration
change can never replay a stale tape.  Counters for all the caches in
this layer surface through :func:`batch_pricing_cache_info`.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..timing.breakdown import GemmTiming
from ..util.errors import DriverError
from .engine import ENGINE, Engine, primitive_memo_info
from .fingerprint import (
    BoundedMemo,
    InternPool,
    canonical_node,
    context_token,
    pricing_key,
)
from .ir import ExecutionPlan, Section

#: tape opcodes (see _TapeRecorder)
_CHARGE, _EXECUTED, _USEFUL, _EXTRA = "c", "e", "u", "x"


class _TapeRecorder(Engine):
    """An engine that records every mutation of one target timing.

    Sub-plan pricing (critical-path / merge internals) accumulates into
    fresh timing objects; only mutations of the *target* — the timing
    the memoized subtree charges into — land on the tape, so a replay
    applies exactly the outer-level effects and nothing twice.
    """

    def __init__(self) -> None:
        super().__init__(verify=False)
        self._tape: Optional[List[Tuple]] = None
        self._target: Optional[GemmTiming] = None

    def record(self, node, ctx, timing: GemmTiming) -> Tuple[Tuple, ...]:
        """Price ``node`` into ``timing``, returning the charge tape."""
        self._tape, self._target = [], timing
        try:
            self._node(node, ctx, timing, None)
            return tuple(self._tape)
        finally:
            self._tape = self._target = None

    # -- recording hooks ----------------------------------------------------

    def _charge(self, timing, sink, node, bucket, cycles, detail=None):
        if timing is self._target:
            self._tape.append((_CHARGE, bucket, cycles))
        super()._charge(timing, sink, node, bucket, cycles, detail)

    def _add_executed(self, timing, sink, node, executed):
        if timing is self._target:
            self._tape.append((_EXECUTED, executed))
        super()._add_executed(timing, sink, node, executed)

    def _add_useful(self, timing, useful):
        if timing is self._target:
            self._tape.append((_USEFUL, useful))
        super()._add_useful(timing, useful)

    def _add_extra(self, timing, key, value):
        if timing is self._target:
            self._tape.append((_EXTRA, key, value))
        super()._add_extra(timing, key, value)


def _replay(tape: Sequence[Tuple], timing: GemmTiming) -> None:
    """Apply a recorded tape: the engine's own mutations, in order."""
    for op in tape:
        tag = op[0]
        if tag == _CHARGE:
            bucket, cycles = op[1], op[2]
            if bucket == "kernel":
                timing.kernel_cycles += cycles
            elif bucket == "pack_a":
                timing.pack_a_cycles += cycles
            elif bucket == "pack_b":
                timing.pack_b_cycles += cycles
            elif bucket == "sync":
                timing.sync_cycles += cycles
            elif bucket == "other":
                timing.other_cycles += cycles
            else:
                raise DriverError(f"unknown timing bucket {bucket!r}")
        elif tag == _EXECUTED:
            timing.executed_flops += op[1]
        elif tag == _USEFUL:
            timing.useful_flops += op[1]
        else:
            timing.extra[op[1]] = timing.extra.get(op[1], 0.0) + op[2]


class BatchPricer:
    """Prices plans through the interned, tape-memoized fast path."""

    def __init__(self, maxsize: int = 8192) -> None:
        self._memo: BoundedMemo = BoundedMemo(maxsize=maxsize)
        self._pool = InternPool()
        # the recorder is stateful while a walk is in flight, so each
        # thread records on its own instance (the serving layer prices
        # from a background tuning thread concurrently with the event
        # loop).  Memo and pool are internally locked; a rare duplicate
        # recording of the same subtree yields an identical tape.
        self._local = threading.local()

    @property
    def _recorder(self) -> _TapeRecorder:
        recorder = getattr(self._local, "recorder", None)
        if recorder is None:
            recorder = self._local.recorder = _TapeRecorder()
        return recorder

    def price(self, plan: ExecutionPlan,
              engine: Optional[Engine] = None) -> GemmTiming:
        """Price one plan; bit-for-bit equal to ``engine.price(plan)``.

        ``engine`` defaults to the process-wide :data:`~repro.plan.engine.ENGINE`;
        its verify-before-price gate is honored (and is itself memoized
        by plan fingerprint, so repeat structures pay nothing).
        """
        engine = engine if engine is not None else ENGINE
        if engine.verify:
            from ..verify.planlint import assert_plan_ok

            assert_plan_ok(plan)
        timing = GemmTiming(
            useful_flops=plan.meta.get("useful_flops", 0)
        )
        root = plan.root
        ctx = plan.context
        if isinstance(root, Section):
            # top-level subtrees are the unit of sharing: panel sections
            # and pack/kernel ops recur across the shapes of a sweep
            for child in root.children:
                self._price_node(child, ctx, timing)
        else:
            self._price_node(root, ctx, timing)
        return timing

    def _price_node(self, node, ctx, timing: GemmTiming) -> None:
        # hash-cons the subtree; the canonical key doubles as the memo
        # key component, so interning and memoization always agree.
        # Pricing walks the *original* node: interned representatives
        # are shared and must stay read-only.
        _, canon = self._pool.intern(node)
        key = pricing_key(node, ctx, canonical=canon)
        tape = self._memo.get(key)
        if tape is None:
            tape = self._recorder.record(node, ctx, timing)
            self._memo.put(key, tape)
        else:
            _replay(tape, timing)

    def cache_info(self) -> Dict[str, Any]:
        """Hit/miss counters of the tape memo and the intern pool."""
        return {"tapes": self._memo.info(), "interning": self._pool.info()}

    def clear(self) -> None:
        """Drop every memoized tape and interned subtree."""
        self._memo.clear()
        self._pool.clear()


#: the process-wide batch pricer (thread-safe: per-thread recorders
#: over internally-locked memo/pool, see BatchPricer.__init__)
BATCH_PRICER = BatchPricer()


def price_plan(plan: ExecutionPlan,
               engine: Optional[Engine] = None) -> GemmTiming:
    """Price one plan through the shared batch memo."""
    return BATCH_PRICER.price(plan, engine=engine)


def price_batch(plans: Iterable[ExecutionPlan],
                engine: Optional[Engine] = None) -> List[GemmTiming]:
    """Price many plans; one GemmTiming per plan, golden-parity exact."""
    return [BATCH_PRICER.price(plan, engine=engine) for plan in plans]


def batch_pricing_cache_info() -> Dict[str, Any]:
    """Counters of every cache on the batch pricing path.

    ``tapes`` — memoized per-subtree charge tapes; ``interning`` — the
    hash-consing pool; ``primitives`` — the memoized pricing primitives
    (kernel sweeps, pack tradeoffs); ``steady_store`` — the persistent
    steady-state store, when one is attached.
    """
    from ..pipeline.steadystore import store_stats

    info = BATCH_PRICER.cache_info()
    info["primitives"] = primitive_memo_info()
    info["steady_store"] = store_stats()
    return info


def clear_batch_pricing_cache() -> None:
    """Drop every batch-layer cache (tapes, intern pool, primitives)."""
    from .engine import clear_primitive_memo

    BATCH_PRICER.clear()
    clear_primitive_memo()


# ---------------------------------------------------------------------------
# whole-grid pricing
# ---------------------------------------------------------------------------


@dataclass
class GridPricing:
    """Vectorized result of pricing one shape grid.

    Arrays are indexed by grid position; ``timings`` holds the exact
    per-plan :class:`GemmTiming` objects (golden-parity floats — the
    arrays are views over the same values for numpy post-processing).
    """

    lib: str
    threads: int
    shapes: np.ndarray          #: (N, 3) int array of (m, n, k)
    kernel_cycles: np.ndarray
    pack_a_cycles: np.ndarray
    pack_b_cycles: np.ndarray
    sync_cycles: np.ndarray
    other_cycles: np.ndarray
    total_cycles: np.ndarray
    executed_flops: np.ndarray
    useful_flops: np.ndarray
    timings: List[GemmTiming] = field(repr=False, default_factory=list)

    def __len__(self) -> int:
        return len(self.timings)

    def flops_per_cycle(self) -> np.ndarray:
        """Useful flops per cycle across the grid (vectorized)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(
                self.total_cycles > 0,
                self.useful_flops / self.total_cycles, 0.0,
            )
        return out

    def gflops(self, freq_ghz: float) -> np.ndarray:
        """Modeled GFLOP/s across the grid at ``freq_ghz``."""
        return self.flops_per_cycle() * freq_ghz

    def efficiency(self, peak_flops_per_cycle: float) -> np.ndarray:
        """Fraction of peak across the grid."""
        return self.flops_per_cycle() / peak_flops_per_cycle


class ShapeGridPricer:
    """Prices whole shape grids in one call through the batch layer.

    Lowering is driver-memoized (one driver per (machine, lib, threads),
    its kernel and steady-state caches warm across the grid) and pricing
    runs through the shared tape memo, so a grid where only loop-trip
    counts vary between structurally similar plans amortizes to one
    model evaluation per distinct structure.
    """

    def __init__(self, machine, lib: str = "reference",
                 threads: int = 1,
                 engine: Optional[Engine] = None) -> None:
        self.machine = machine
        self.lib = lib
        self.threads = threads
        self.engine = engine if engine is not None else ENGINE

    def lower(self, m: int, n: int, k: int) -> ExecutionPlan:
        """Lower one shape with the memoized driver."""
        from ..verify.planlint import lower_named

        return lower_named(self.machine, self.lib, self.threads, m, n, k)

    def price_grid(
        self, shapes: Sequence[Tuple[int, int, int]]
    ) -> GridPricing:
        """Lower + price every shape; returns vectorized grid arrays."""
        shape_list = [tuple(int(s) for s in shape) for shape in shapes]
        plans = [self.lower(m, n, k) for (m, n, k) in shape_list]
        timings = price_batch(plans, engine=self.engine)
        arr = np.asarray(shape_list, dtype=np.int64).reshape(-1, 3)
        column = lambda name: np.asarray(  # noqa: E731
            [getattr(t, name) for t in timings], dtype=np.float64
        )
        return GridPricing(
            lib=self.lib,
            threads=self.threads,
            shapes=arr,
            kernel_cycles=column("kernel_cycles"),
            pack_a_cycles=column("pack_a_cycles"),
            pack_b_cycles=column("pack_b_cycles"),
            sync_cycles=column("sync_cycles"),
            other_cycles=column("other_cycles"),
            total_cycles=np.asarray(
                [t.total_cycles for t in timings], dtype=np.float64
            ),
            executed_flops=column("executed_flops"),
            useful_flops=np.asarray(
                [t.useful_flops for t in timings], dtype=np.float64
            ),
            timings=list(timings),
        )

    def cache_info(self) -> Dict[str, Any]:
        """Counters of the caches this pricer runs on."""
        return batch_pricing_cache_info()


def price_request_groups(
    machine,
    requests: Sequence[Tuple[int, int, int, int]],
    lib: str = "reference",
    engine: Optional[Engine] = None,
) -> List[GemmTiming]:
    """Price a mixed-shape request batch, one timing per request, in order.

    The serving layer's batched entry point: ``requests`` is a sequence
    of ``(m, n, k, threads)`` queries as they arrived (mixed thread
    counts, duplicates allowed).  Requests are grouped by thread count,
    each group priced through one :class:`ShapeGridPricer` grid call
    (shared drivers, shared charge tapes), and the timings scattered
    back into arrival order — bit-for-bit equal to pricing each request
    alone.
    """
    groups: Dict[int, List[int]] = {}
    for idx, (_, _, _, threads) in enumerate(requests):
        groups.setdefault(int(threads), []).append(idx)
    out: List[Optional[GemmTiming]] = [None] * len(requests)
    for threads, indices in groups.items():
        pricer = ShapeGridPricer(machine, lib=lib, threads=threads,
                                 engine=engine)
        grid = pricer.price_grid(
            [requests[i][:3] for i in indices]
        )
        for i, timing in zip(indices, grid.timings):
            out[i] = timing
    return out  # type: ignore[return-value]


def skeleton_key(node) -> Tuple:
    """Canonical structure with scalar trip counts masked.

    Two plans share a skeleton when they differ only in integer loop
    extents (``m``/``n``/``k``/``mc``/``rows``/``chunks``/...); the grid
    pricer reports how many distinct skeletons a sweep touched.  This is
    a *reporting* identity only — pricing caches always key on the full
    canonical form, so different trip counts never share a tape.
    """
    canon = canonical_node(node)

    def mask(value):
        if isinstance(value, bool):
            return value
        if isinstance(value, int):
            return "<int>"
        if isinstance(value, str):
            # labels embed trip counts too ("jit-sweep[100x100x4]")
            return re.sub(r"\d+", "#", value)
        if isinstance(value, tuple):
            return tuple(mask(v) for v in value)
        return value

    return mask(canon)


def skeleton_census(plans: Iterable[ExecutionPlan]) -> Dict[str, int]:
    """(plans, distinct skeletons, distinct structures) over ``plans``."""
    skeletons = set()
    structures = set()
    count = 0
    for plan in plans:
        count += 1
        skeletons.add(skeleton_key(plan.root))
        structures.add(
            (context_token(plan.context), canonical_node(plan.root))
        )
    return {
        "plans": count,
        "skeletons": len(skeletons),
        "structures": len(structures),
    }
