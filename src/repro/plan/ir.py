"""The ExecutionPlan IR: a typed tree describing one GEMM's work.

A plan is *pure structure*: loop-nest sections, packing operations,
micro-kernel invocations and synchronization points, each carrying the
static parameters (block shapes, residencies, sharing groups) that the
drivers' lowerings decided.  No node holds a cycle count — pricing is the
:class:`~repro.plan.engine.Engine`'s job, which walks the tree depth-first
in child order so that floating-point accumulation into the
:class:`~repro.timing.breakdown.GemmTiming` buckets reproduces the
pre-refactor per-driver loops bit-for-bit.

Node vocabulary (one per distinct accounting primitive in the drivers):

========================  ====================================================
:class:`Section`          structural grouping (a loop iteration, a phase)
:class:`PackOp`           one priced pack (A, B, or format conversion)
:class:`GebpOp`           one catalog-kernel GEBP sweep over a macro-tile
:class:`JitSweepOp`       one JIT-kernel sweep (reference SMM), with the
                          orientation search left to the engine
:class:`FusedPackOp`      pack-B fused into kernel slack (Fig. 11)
:class:`BarrierOp`        one tree barrier over a thread group
:class:`ThreadStripsOp`   per-thread M-strips of a cooperative kc-step
                          (critical path = largest strip)
:class:`CriticalPathOp`   max over independent sub-plans (2-D grid scheme)
:class:`MergeOp`          sum of sub-plans (batched SMM)
========================  ====================================================
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Optional, Tuple


def _jsonable(value: Any) -> Any:
    """Deterministic conversion of node parameters for JSON dumps.

    Every unknown object becomes a *structured descriptor* — a dict
    keyed by the type name with recursively-converted public fields —
    never ``repr()``, whose output can embed memory addresses or other
    run-dependent text and make otherwise-identical plan dumps
    un-diffable.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    mr = getattr(value, "mr", None)
    nr = getattr(value, "nr", None)
    if mr is not None and nr is not None:
        return f"{mr}x{nr}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out: Dict[str, Any] = {"type": type(value).__name__}
        for f in dataclasses.fields(value):
            out[f.name] = _jsonable(getattr(value, f.name))
        return out
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return {"type": type(value).__name__, **_jsonable(to_dict())}
    text = str(value)
    if " at 0x" in text:  # default object repr: address is run-dependent
        return {"type": type(value).__name__}
    return {"type": type(value).__name__, "str": text}


class PlanNode:
    """Base class: tree walking and serialization shared by all nodes."""

    kind: ClassVar[str] = "node"
    label: str
    children: Tuple["PlanNode", ...] = ()

    def params(self) -> Dict[str, Any]:
        """The node's static parameters (everything but label/children)."""
        out: Dict[str, Any] = {}
        for f in dataclasses.fields(self):
            if f.name in ("label", "children", "subplans"):
                continue
            out[f.name] = _jsonable(getattr(self, f.name))
        return out

    def walk(self, depth: int = 0):
        """Yield ``(depth, node)`` depth-first in child order."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def count(self) -> int:
        """Number of nodes in this subtree (sub-plans not included)."""
        return sum(1 for _ in self.walk())

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready tree dump."""
        out: Dict[str, Any] = {"kind": self.kind, "label": self.label}
        params = self.params()
        if params:
            out["params"] = params
        subplans = getattr(self, "subplans", None)
        if subplans:
            out["subplans"] = {
                str(key): sub.root.to_dict() for key, sub in subplans.items()
            }
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


@dataclass
class Section(PlanNode):
    """Structural grouping of child operations (priced in child order)."""

    label: str
    children: Tuple[PlanNode, ...] = ()
    kind: ClassVar[str] = "section"


@dataclass
class PackOp(PlanNode):
    """One pack of a ``rows x cols`` operand panel.

    ``bucket`` selects the timing bucket (``pack_a`` / ``pack_b`` /
    ``other`` — the last for BLASFEO's format conversion).  ``share`` is
    the cooperating-thread count the cost is divided by (``None`` = the
    pack is private and undivided).  ``explicit_cache`` mirrors the Goto
    driver passing its cache model explicitly to
    :meth:`~repro.packing.cost.PackingCostModel.pack_cycles` (bypassing
    the memo) instead of relying on the model's bound default.
    """

    label: str
    bucket: str
    rows: int
    cols: int
    itemsize: int
    contiguous: bool
    resident: str
    padded_elements: int = 0
    share: Optional[int] = None
    explicit_cache: bool = False
    kind: ClassVar[str] = "pack"


@dataclass
class GebpOp(PlanNode):
    """One GEBP sweep of the catalog's kernels over an ``mc x nc x kc`` tile.

    ``packing_free`` marks kernels that run directly off the source
    layout (BLASFEO's panel-major design) and therefore legitimately
    have no dominating pack operations — the plan analyzer exempts them
    from the V321 dataflow requirement.
    """

    label: str
    mc: int
    nc: int
    kc: int
    itemsize: int
    a_resident: str
    b_resident: str
    b_shared_by: int = 1
    executed_factors: Tuple[int, ...] = ()
    packing_free: bool = False
    kind: ClassVar[str] = "gebp"


@dataclass
class JitSweepOp(PlanNode):
    """One JIT-kernel sweep over ``m x n`` with depth ``k`` (reference SMM).

    ``main=None`` leaves the main-tile orientation search (e.g. 8x12 vs
    12x8) to the engine; a pinned :class:`~repro.kernels.KernelSpec`
    prices exactly that tile.  ``a_resident=None`` means residencies are
    derived from the problem footprint at pricing time (the
    single-thread tiny-problem check); the parallel lowering pins them.
    """

    label: str
    m: int
    n: int
    k: int
    itemsize: int
    packed_b: bool
    a_resident: Optional[str] = None
    b_resident: Optional[str] = None
    main: Any = None
    executed_factors: Tuple[int, ...] = ()
    kind: ClassVar[str] = "jit_sweep"


@dataclass
class FusedPackOp(PlanNode):
    """Pack-B fused into the kernel's spare issue slots (paper Fig. 11)."""

    label: str
    m: int
    n: int
    k: int
    itemsize: int
    kind: ClassVar[str] = "fused_pack"


@dataclass
class BarrierOp(PlanNode):
    """One tree barrier over ``group`` cooperating threads."""

    label: str
    group: int
    kind: ClassVar[str] = "barrier"


@dataclass
class ThreadStripsOp(PlanNode):
    """Per-thread M-strips of one cooperative kc-step.

    The critical path charges pack-A and kernel cycles for the largest
    chunk; executed flops sum over every distinct nonzero chunk size
    (weighted by multiplicity) and are then scaled by
    ``executed_factors`` (the BLIS jc*ic*jr replication), folded left to
    match the original accumulation order.

    ``core_classes`` tags each strip with the core-class index (into
    ``machine.classes``) of the thread executing it; the empty tuple —
    the homogeneous default, deliberately omitted from canonical plan
    identity so pre-class fingerprints stand — means "every strip runs
    on class 0".  A throughput-weighted lowering emits one tag per
    chunk; the engine then prices each strip with its class's kernel
    and cache models and the verifier checks residency against the
    strip's own L1/L2.
    """

    label: str
    chunks: Tuple[int, ...]
    ncb: int
    kcb: int
    itemsize: int
    source_resident: str
    pack_a_contiguous: bool
    mc: int
    pack_a_share: int = 1
    b_shared_by: int = 1
    executed_factors: Tuple[int, ...] = ()
    core_classes: Tuple[int, ...] = ()
    kind: ClassVar[str] = "thread_strips"


@dataclass
class CriticalPathOp(PlanNode):
    """Max over independent sub-plans (the 2-D grid scheme).

    ``chunks`` is the full partition (with multiplicity); ``subplans``
    maps each distinct nonzero chunk shape to its lowered sub-plan.  The
    engine prices every distinct sub-plan once, charges the worst one's
    kernel/pack buckets, and sums executed flops over all chunks.
    """

    label: str
    chunks: Tuple[Tuple[int, int], ...]
    subplans: Dict[Tuple[int, int], "ExecutionPlan"] = field(
        default_factory=dict
    )
    kind: ClassVar[str] = "critical_path"


@dataclass
class MergeOp(PlanNode):
    """Sum of independent sub-plans (batched SMM accounting)."""

    label: str
    subplans: Tuple["ExecutionPlan", ...] = ()
    kind: ClassVar[str] = "merge"


@dataclass
class ExecutionPlan:
    """A lowered GEMM: the op tree plus metadata and a pricing context.

    ``meta`` records the lowering's adaptive decisions and provenance
    (driver name, shape, threads, ``useful_flops``, the reference SMM's
    :class:`~repro.core.reference.SmmDecision`, scheme info, tuner
    provenance).  ``context`` is the
    :class:`~repro.plan.engine.PricingContext` binding the machine,
    cache, packing and kernel models the engine prices against.
    """

    root: PlanNode
    meta: Dict[str, Any]
    context: Any

    def walk(self):
        """Yield ``(depth, node)`` over the whole tree."""
        yield from self.root.walk()

    def count_ops(self) -> int:
        """Total node count (sub-plans of critical-path/merge not included)."""
        return self.root.count()

    def price(self, sink=None):
        """Price this plan with the default engine."""
        from .engine import ENGINE

        return ENGINE.price(self, sink=sink)

    def render_tree(self, max_lines: int = 80) -> str:
        """Human-readable tree dump, truncated to ``max_lines`` lines."""
        lines = []
        total = 0
        for depth, node in self.walk():
            total += 1
            if len(lines) >= max_lines:
                continue
            params = node.params()
            blurb = ", ".join(
                f"{k}={v}" for k, v in params.items()
                if v not in (None, (), [])
            )
            pad = "  " * depth
            lines.append(
                f"{pad}{node.kind} {node.label}"
                + (f"  [{blurb}]" if blurb else "")
            )
        if total > len(lines):
            lines.append(f"... ({total - len(lines)} more nodes)")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dump of metadata and the op tree."""
        return {
            "meta": _jsonable(self.meta),
            "ops": self.count_ops(),
            "tree": self.root.to_dict(),
        }
