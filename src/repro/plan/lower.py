"""Driver lowerings: library configuration -> ExecutionPlan.

Each function reproduces exactly the loop structure and adaptive
decisions of the driver it replaces, but emits IR nodes instead of
charging cycles.  The plan's ``meta`` records the decisions (packing
choice, factorization, scheme info) so callers keep getting the same
``SmmDecision`` / scheme-info objects as before the refactor.
"""

from __future__ import annotations

from typing import Optional

from ..core.reference import SmmDecision
from ..parallel.partition import (
    blis_factorization,
    core_class_weights,
    grid_partition,
    split_even,
    weighted_split,
)
from ..timing.models import gemm_flops
from ..util.errors import DriverError
from ..util.validation import ceil_div
from .engine import (
    PricingContext,
    estimate_pack_tradeoff,
    fused_pack_extra,
    operand_residency,
)
from .ir import (
    BarrierOp,
    CriticalPathOp,
    ExecutionPlan,
    FusedPackOp,
    GebpOp,
    JitSweepOp,
    MergeOp,
    PackOp,
    Section,
    ThreadStripsOp,
)


def _round_up(value: int, base: int) -> int:
    return ((value + base - 1) // base) * base


def _coop_kc(kc: int, ncb: int, nr: int, itemsize: int,
             l2_bytes: int) -> int:
    """Largest kc whose cooperative packed B panel fits the shared L2.

    A cooperatively packed ``kc x round_up(ncb, nr)`` B panel lives in
    the cluster-shared L2 (the V313 budget); a machine with a larger L1
    than the Phytium derives a kc from it that can overflow a 2 MiB
    cluster on wide panels.  The clamp is exact-no-op whenever the
    driver's kc already fits — every golden Phytium case does — and
    floors at 32 so degenerate geometries still make progress.
    """
    limit = l2_bytes // (_round_up(ncb, nr) * itemsize)
    return max(32, min(kc, limit))


# ---------------------------------------------------------------------------
# Goto-structured catalog drivers (OpenBLAS / BLIS / Eigen)
# ---------------------------------------------------------------------------


def lower_goto(driver, m: int, n: int, k: int, cache_model=None) -> ExecutionPlan:
    """Lower one Goto-structured GEMM (Fig. 4 Layers 1-7) to a plan.

    ``cache_model`` overrides the driver's single-core cache situation —
    the multithreaded executor passes one configured for L2 sharing and
    NUMA to lower per-thread sub-problems.
    """
    if m <= 0 or n <= 0 or k <= 0:
        raise DriverError(f"invalid GEMM shape {m}x{n}x{k}")
    cache = cache_model if cache_model is not None else driver.cache_model
    blocking = driver.blocking
    catalog = driver.catalog
    config = driver.config
    itemsize = driver.dtype.itemsize
    ctx = PricingContext(
        machine=driver.machine,
        cache=cache,
        packing=driver.packing_cost,
        itemsize=itemsize,
        kernel_cost=driver.kernel_cost,
        catalog=driver.catalog,
        warm=config.warm,
    )
    source_res = driver._source_residency(m, n, k, itemsize, cache)

    def pack_b_op(kcb: int, ncb: int) -> PackOp:
        return PackOp(
            label=f"pack_b[{kcb}x{ncb}]", bucket="pack_b",
            rows=kcb, cols=ncb, itemsize=itemsize,
            contiguous=config.pack_b_contiguous, resident=source_res,
            padded_elements=kcb * _round_up(ncb, catalog.nr),
            explicit_cache=True,
        )

    def pack_a_op(mcb: int, kcb: int) -> PackOp:
        return PackOp(
            label=f"pack_a[{mcb}x{kcb}]", bucket="pack_a",
            rows=mcb, cols=kcb, itemsize=itemsize,
            contiguous=config.pack_a_contiguous, resident=source_res,
            padded_elements=_round_up(mcb, catalog.mr) * kcb,
            explicit_cache=True,
        )

    def gebp_op(mcb: int, ncb: int, kcb: int) -> GebpOp:
        tiny = config.warm and (
            (mcb * kcb + kcb * ncb + mcb * ncb) * itemsize
            <= 0.75 * driver.machine.l1d.size_bytes
        )
        return GebpOp(
            label=f"gebp[{mcb}x{ncb}x{kcb}]",
            mc=mcb, nc=ncb, kc=kcb, itemsize=itemsize,
            a_resident="l1" if tiny else "l2",
            b_resident="l1" if tiny else driver._packed_b_residency(
                kcb, ncb, itemsize, cache),
        )

    sections = []
    if config.outer_loop == "n":
        # Goto order: pack B once per (jj, kk); A per (jj, kk, ii)
        for jj in range(0, n, blocking.nc):
            ncb = min(blocking.nc, n - jj)
            for kk in range(0, k, blocking.kc):
                kcb = min(blocking.kc, k - kk)
                kids = [pack_b_op(kcb, ncb)]
                for ii in range(0, m, blocking.mc):
                    mcb = min(blocking.mc, m - ii)
                    kids.append(pack_a_op(mcb, kcb))
                    kids.append(gebp_op(mcb, ncb, kcb))
                sections.append(
                    Section(f"panel[j={jj},k={kk}]", tuple(kids))
                )
    else:
        # Eigen order: outermost over M; A packed per (ii, kk), B
        # re-packed per (ii, kk, jj) panel
        for ii in range(0, m, blocking.mc):
            mcb = min(blocking.mc, m - ii)
            for kk in range(0, k, blocking.kc):
                kcb = min(blocking.kc, k - kk)
                kids = [pack_a_op(mcb, kcb)]
                for jj in range(0, n, blocking.nc):
                    ncb = min(blocking.nc, n - jj)
                    kids.append(pack_b_op(kcb, ncb))
                    kids.append(gebp_op(mcb, ncb, kcb))
                sections.append(
                    Section(f"panel[i={ii},k={kk}]", tuple(kids))
                )

    root = Section(f"goto-{config.outer_loop}-order", tuple(sections))
    meta = {
        "driver": driver.name,
        "shape": (m, n, k),
        "threads": 1,
        "useful_flops": gemm_flops(m, n, k),
        "order": config.outer_loop,
        "source_residency": source_res,
        "blocking": (blocking.mc, blocking.kc, blocking.nc),
        "kernel_shape": f"{catalog.mr}x{catalog.nr}",
    }
    return ExecutionPlan(root=root, meta=meta, context=ctx)


# ---------------------------------------------------------------------------
# BLASFEO panel-major driver
# ---------------------------------------------------------------------------


def lower_blasfeo(driver, m: int, n: int, k: int) -> ExecutionPlan:
    """Lower one BLASFEO SMM call: no packing, one flat kernel pass."""
    from ..memlayout.panelmajor import conversion_element_moves

    if m <= 0 or n <= 0 or k <= 0:
        raise DriverError(f"invalid GEMM shape {m}x{n}x{k}")
    itemsize = driver.dtype.itemsize
    ctx = PricingContext(
        machine=driver.machine,
        cache=driver.cache_model,
        packing=driver.packing_cost,
        itemsize=itemsize,
        kernel_cost=driver.kernel_cost,
        catalog=driver.catalog,
        warm=driver.warm,
    )
    kids = []
    if driver.include_conversion:
        # application-side panel-major conversion, charged to 'other';
        # B stays column-major (its panels are the kernel's B slivers)
        kids.append(PackOp(
            label=f"panel-convert[A:{m}x{k}]", bucket="other",
            rows=m, cols=k, itemsize=itemsize,
            contiguous=False,
            resident="l2" if driver.warm else "mem",
            padded_elements=conversion_element_moves(m, k, driver.ps),
        ))
    resident = driver._residency(m, n, k, itemsize)
    kids.append(GebpOp(
        label=f"kernel-pass[{m}x{n}x{k}]",
        mc=m, nc=n, kc=k, itemsize=itemsize,
        a_resident=resident, b_resident=resident,
        packing_free=True,  # panel-major: kernels read the source layout
    ))
    root = Section("blasfeo-flat", tuple(kids))
    meta = {
        "driver": driver.name,
        "shape": (m, n, k),
        "threads": 1,
        "useful_flops": gemm_flops(m, n, k),
        "ps": driver.ps,
        "conversion_charged": driver.include_conversion,
        "kernel_shape": f"{driver.catalog.mr}x{driver.catalog.nr}",
    }
    return ExecutionPlan(root=root, meta=meta, context=ctx)


# ---------------------------------------------------------------------------
# reference SMM driver (single-thread and kc-blocked parallel)
# ---------------------------------------------------------------------------


def lower_reference(
    driver,
    m: int,
    n: int,
    k: int,
    main=None,
    packed_b: Optional[bool] = None,
    factorization=None,
) -> ExecutionPlan:
    """Lower one reference-SMM call, making the packing-optional choice.

    Pinned arguments (``main`` / ``packed_b`` / ``factorization``) come
    from the tuner; any left ``None`` falls back to the driver's own
    adaptive decision, and ``meta["provenance"]`` records which case ran.
    """
    pinned = (
        main is not None or packed_b is not None or factorization is not None
    )
    ctx = PricingContext(
        machine=driver.machine,
        cache=driver.cache_model,
        packing=driver.packing_cost,
        itemsize=driver.dtype.itemsize,
        jit=driver.jit,
        analyzer=driver.analyzer,
        warm=driver.warm,
        pack_edge_b=driver.pack_edge_b,
    )
    if driver.threads == 1:
        plan = _lower_reference_single(driver, ctx, m, n, k, main, packed_b)
    else:
        plan = _lower_reference_parallel(
            driver, ctx, m, n, k, main, packed_b, factorization
        )
    plan.meta["provenance"] = "pinned" if pinned else "adaptive"
    return plan


def _lower_reference_single(driver, ctx, m, n, k, main, packed_b):
    itemsize = ctx.itemsize

    # --- packing-optional decision (at lowering time) ----------------
    pack_cycles, nopack_penalty = estimate_pack_tradeoff(
        ctx, m, n, k, main=main
    )
    effective_pack = (
        fused_pack_extra(ctx, m, n, k)
        if driver.fused_packing else pack_cycles
    )
    if packed_b is None:
        packed_b = (
            driver.force_packing
            if driver.force_packing is not None
            else effective_pack < nopack_penalty
        )

    kids = []
    if packed_b:
        if driver.fused_packing:
            kids.append(FusedPackOp(
                label=f"fused-pack-b[{k}x{n}]",
                m=m, n=n, k=k, itemsize=itemsize,
            ))
        else:
            panel = main if main is not None else driver.jit.main_spec
            kids.append(PackOp(
                label=f"pack_b[{k}x{n}]", bucket="pack_b",
                rows=k, cols=n, itemsize=itemsize,
                contiguous=False,
                resident=operand_residency(ctx, m, n, k),
                padded_elements=k * ceil_div(n, panel.nr) * panel.nr,
            ))
    kids.append(JitSweepOp(
        label=f"jit-sweep[{m}x{n}x{k}]",
        m=m, n=n, k=k, itemsize=itemsize,
        packed_b=packed_b, main=main,
    ))

    shape_spec = main if main is not None else driver.jit.main_spec
    decision = SmmDecision(
        packed_b=packed_b,
        pack_cycles_estimate=effective_pack,
        nopack_penalty_estimate=nopack_penalty,
        kernel_shape=f"{shape_spec.mr}x{shape_spec.nr}",
        threads=1,
    )
    meta = {
        "driver": driver.name,
        "shape": (m, n, k),
        "threads": 1,
        "useful_flops": gemm_flops(m, n, k),
        "decision": decision,
        "packed_b": packed_b,
        "kernel_shape": decision.kernel_shape,
        "fused_packing": driver.fused_packing,
    }
    return ExecutionPlan(
        root=Section("reference-smm", tuple(kids)), meta=meta, context=ctx
    )


def _lower_reference_parallel(
    driver, ctx, m, n, k, main, packed_b, factorization
):
    """Multithreaded critical path, assembled per kc-iteration.

    Mirrors the BLIS executor's structure (cooperative B pack within the
    jc group, barriers sized by the group, per-thread kernel sweep) but
    with the reference design's JIT kernels and packing-optional
    decision.
    """
    itemsize = ctx.itemsize
    tile = main if main is not None else driver.jit.main_spec
    fact = (
        factorization if factorization is not None
        else blis_factorization(m, n, driver.threads, tile.mr, tile.nr)
    )

    m_chunk = ceil_div(m, fact.ic)
    n_group = ceil_div(n, fact.jc)
    n_chunk = ceil_div(n_group, fact.jr)
    kc = max(32, min(k, 256))

    # residency is a property of the *global* problem: a 2048x2048 B
    # streams from memory even though each thread's slice is small
    global_res = operand_residency(ctx, m, n, k)
    a_res = (
        "l2" if m * k * itemsize
        <= 0.75 * ctx.cache.effective_l2_bytes and driver.warm
        else global_res
    )

    pack_cycles, nopack_penalty = estimate_pack_tradeoff(
        ctx, m_chunk, n_chunk, kc,
        source_residency=global_res, main=main,
    )
    if packed_b is None:
        packed_b = (
            driver.force_packing
            if driver.force_packing is not None
            else pack_cycles < nopack_penalty
        )

    panel = main if main is not None else driver.jit.main_spec
    kids = []
    for kk in range(0, k, kc):
        kcb = min(kc, k - kk)
        step = []
        if packed_b:
            # the jc group packs its B panel cooperatively from the
            # globally-resident source
            step.append(PackOp(
                label=f"pack_b[k={kk}]", bucket="pack_b",
                rows=kcb, cols=n_group, itemsize=itemsize,
                contiguous=False, resident=global_res,
                padded_elements=(
                    kcb * ceil_div(n_group, panel.nr) * panel.nr
                ),
                share=fact.pack_b_group,
            ))
            step.append(BarrierOp(
                label="pack-b-barrier", group=fact.pack_b_group
            ))
            b_res = "l2"  # just packed into the cluster's L2
        else:
            b_res = global_res
        step.append(JitSweepOp(
            label=f"jit-sweep[k={kk}]",
            m=m_chunk, n=n_chunk, k=kcb, itemsize=itemsize,
            packed_b=packed_b,
            a_resident=a_res, b_resident=b_res, main=main,
            executed_factors=(fact.ic, fact.jc, fact.jr),
        ))
        step.append(BarrierOp(label="kc-barrier", group=fact.pack_b_group))
        kids.append(Section(f"kc[{kk}]", tuple(step)))

    decision = SmmDecision(
        packed_b=packed_b,
        pack_cycles_estimate=pack_cycles,
        nopack_penalty_estimate=nopack_penalty,
        kernel_shape=f"{tile.mr}x{tile.nr}",
        threads=driver.threads,
        factorization=fact,
    )
    meta = {
        "driver": driver.name,
        "shape": (m, n, k),
        "threads": driver.threads,
        "useful_flops": gemm_flops(m, n, k),
        "decision": decision,
        "packed_b": packed_b,
        "kernel_shape": decision.kernel_shape,
        "factorization": fact,
    }
    return ExecutionPlan(
        root=Section("reference-smm-mt", tuple(kids)), meta=meta, context=ctx
    )


# ---------------------------------------------------------------------------
# multithreaded library schemes (OpenBLAS 1-D / BLIS multidim / Eigen grid)
# ---------------------------------------------------------------------------


def lower_library_mt(mt, m: int, n: int, k: int) -> ExecutionPlan:
    """Lower one multithreaded library GEMM for ``mt``'s scheme."""
    if mt.library == "openblas":
        return _lower_mt_openblas(mt, m, n, k)
    if mt.library == "blis":
        return _lower_mt_blis(mt, m, n, k)
    return _lower_mt_eigen(mt, m, n, k)


def _mt_context(mt) -> PricingContext:
    return PricingContext(
        machine=mt.machine,
        cache=mt.cache_mt,
        packing=mt.packing_cost,
        itemsize=mt.dtype.itemsize,
        kernel_cost=mt.kernel_cost,
        catalog=mt.driver.catalog,
        warm=mt.driver.config.warm,
        class_models=getattr(mt, "class_models", None),
    )


def _mt_meta(mt, m, n, k, info) -> dict:
    return {
        "driver": mt.library,
        "shape": (m, n, k),
        "threads": mt.threads,
        "useful_flops": gemm_flops(m, n, k),
        "kernel_shape": f"{mt.driver.catalog.mr}x{mt.driver.catalog.nr}",
        "info": info,
    }


def _lower_mt_openblas(mt, m, n, k) -> ExecutionPlan:
    """1-D M split across all T threads; B packed cooperatively by all.

    On a heterogeneous machine every strip carries its thread's
    core-class tag (compact placement: thread t on core t) so the
    engine prices it with the right class models; with
    ``partition="weighted"`` the chunk sizes additionally follow the
    per-class throughput weights instead of the balanced split.
    Homogeneous machines emit exactly the legacy plan — no tags, even
    chunks — keeping golden fingerprints bit-for-bit.
    """
    drv = mt.driver
    blocking = drv.blocking
    cat = drv.catalog
    itemsize = mt.dtype.itemsize
    T = mt.threads
    heterogeneous = mt.machine.is_heterogeneous
    tags = (
        tuple(
            mt.machine.core_class_of(t % mt.machine.n_cores)
            for t in range(T)
        )
        if heterogeneous else ()
    )
    if heterogeneous and getattr(mt, "partition", "even") == "weighted":
        # mr-granular units: a thread handed a sliver thinner than one
        # register tile pays the full edge-kernel sweep anyway, so the
        # weighted partition apportions whole mr-tiles
        chunks = tuple(weighted_split(
            m, core_class_weights(mt.machine, T), granule=cat.mr
        ))
    else:
        chunks = tuple(c for c in split_even(m, T))
    source_res = drv._source_residency(m, n, k, itemsize, mt.cache_mt)
    if heterogeneous and getattr(mt, "class_models", None):
        # a residency claim tagged onto per-class strips must hold on
        # EVERY class it schedules on (the verifier checks each strip
        # against its own L1/L2), so take the weakest class's verdict
        for cm in mt.class_models:
            if drv._source_residency(m, n, k, itemsize, cm.cache) == "mem":
                source_res = "mem"
                break
    b_shared = min(mt.machine.l2.shared_by, T)

    kids = []
    for jj in range(0, n, blocking.nc):
        ncb = min(blocking.nc, n - jj)
        kc_panel = _coop_kc(blocking.kc, ncb, cat.nr, itemsize,
                            mt.machine.l2.size_bytes)
        for kk in range(0, k, kc_panel):
            kcb = min(kc_panel, k - kk)
            step = (
                PackOp(
                    label=f"pack_b[{kcb}x{ncb}]", bucket="pack_b",
                    rows=kcb, cols=ncb, itemsize=itemsize,
                    contiguous=drv.config.pack_b_contiguous,
                    resident=source_res,
                    padded_elements=kcb * _round_up(ncb, cat.nr),
                    share=T,
                ),
                BarrierOp(label="pack-b-barrier", group=T),
                ThreadStripsOp(
                    label=f"m-strips[{kcb}x{ncb}]",
                    chunks=chunks, ncb=ncb, kcb=kcb, itemsize=itemsize,
                    source_resident=source_res,
                    pack_a_contiguous=drv.config.pack_a_contiguous,
                    mc=blocking.mc,
                    b_shared_by=b_shared,
                    core_classes=tags,
                ),
                BarrierOp(label="kc-barrier", group=T),
            )
            kids.append(Section(f"panel[j={jj},k={kk}]", step))
    info = {
        "scheme": "1d-m",
        "chunks_nonzero": sum(1 for c in chunks if c),
        "max_chunk": max(chunks),
    }
    if heterogeneous:
        info["partition"] = getattr(mt, "partition", "even")
    return ExecutionPlan(
        root=Section("mt-1d-m", tuple(kids)),
        meta=_mt_meta(mt, m, n, k, info),
        context=_mt_context(mt),
    )


def _lower_mt_blis(mt, m, n, k) -> ExecutionPlan:
    """Multi-dimensional: T factorized over (jc, ic, jr)."""
    drv = mt.driver
    blocking = drv.blocking
    cat = drv.catalog
    itemsize = mt.dtype.itemsize
    fact = blis_factorization(m, n, mt.threads, cat.mr, cat.nr)
    source_res = drv._source_residency(m, n, k, itemsize, mt.cache_mt)

    n_group = max(split_even(n, fact.jc))  # one jc group's N extent
    m_chunk = max(split_even(m, fact.ic))  # one thread's M extent
    n_thread = max(split_even(n_group, fact.jr))  # one thread's N extent

    kids = []
    for jj in range(0, n_group, blocking.nc):
        ncb = min(blocking.nc, n_group - jj)
        ncb_thread = min(n_thread, ncb)
        kc_panel = (
            _coop_kc(blocking.kc, ncb, cat.nr, itemsize,
                     mt.machine.l2.size_bytes)
            if fact.pack_b_group > 1 else blocking.kc
        )
        for kk in range(0, k, kc_panel):
            kcb = min(kc_panel, k - kk)
            step = [
                # B pack cooperative within the jc group
                PackOp(
                    label=f"pack_b[{kcb}x{ncb}]", bucket="pack_b",
                    rows=kcb, cols=ncb, itemsize=itemsize,
                    contiguous=drv.config.pack_b_contiguous,
                    resident=source_res,
                    padded_elements=kcb * _round_up(ncb, cat.nr),
                    share=fact.pack_b_group,
                ),
                BarrierOp(label="pack-b-barrier", group=fact.pack_b_group),
                # A pack cooperative within the jr group, kernel per thread
                ThreadStripsOp(
                    label=f"m-strips[{kcb}x{ncb_thread}]",
                    chunks=(m_chunk,), ncb=ncb_thread, kcb=kcb,
                    itemsize=itemsize,
                    source_resident=source_res,
                    pack_a_contiguous=drv.config.pack_a_contiguous,
                    mc=blocking.mc,
                    pack_a_share=fact.pack_a_group,
                    b_shared_by=min(
                        mt.machine.l2.shared_by, fact.pack_b_group
                    ),
                    executed_factors=(fact.ic, fact.jc, fact.jr),
                ),
            ]
            if fact.pack_a_group > 1:
                step.append(BarrierOp(
                    label="pack-a-barrier", group=fact.pack_a_group
                ))
            step.append(BarrierOp(
                label="kc-barrier", group=fact.pack_b_group
            ))
            kids.append(Section(f"panel[j={jj},k={kk}]", tuple(step)))
    info = {"scheme": "multidim", "factorization": fact}
    return ExecutionPlan(
        root=Section("mt-multidim", tuple(kids)),
        meta=_mt_meta(mt, m, n, k, info),
        context=_mt_context(mt),
    )


def _lower_mt_eigen(mt, m, n, k) -> ExecutionPlan:
    """Balanced 2-D grid of independent sub-GEMMs, one join barrier."""
    chunks = grid_partition(m, n, mt.threads)
    subplans = {}
    for (mi, nj) in set(chunks):
        if mi == 0 or nj == 0:
            continue
        subplans[(mi, nj)] = lower_goto(
            mt.driver, mi, nj, k, cache_model=mt.cache_mt
        )
    kids = (
        CriticalPathOp(
            label="2d-grid", chunks=tuple(chunks), subplans=subplans
        ),
        BarrierOp(label="join", group=mt.threads),
    )
    info = {"scheme": "2d-grid", "grid_chunks": len(chunks)}
    return ExecutionPlan(
        root=Section("mt-2d-grid", kids),
        meta=_mt_meta(mt, m, n, k, info),
        context=_mt_context(mt),
    )


# ---------------------------------------------------------------------------
# batched SMM
# ---------------------------------------------------------------------------


def lower_batch(driver, shapes) -> ExecutionPlan:
    """Lower a batch of (m, n, k) problems to one merged plan.

    ``driver`` is any single-problem driver with a ``plan_gemm`` method;
    the merge node sums the sub-plans' buckets exactly like folding
    :meth:`~repro.timing.breakdown.GemmTiming.merged_with` over the
    per-problem timings.
    """
    subplans = tuple(driver.plan_gemm(m, n, k) for (m, n, k) in shapes)
    meta = {
        "driver": getattr(driver, "name", driver.__class__.__name__),
        "shape": tuple(tuple(s) for s in shapes),
        "threads": getattr(driver, "threads", 1),
        "useful_flops": 0,  # accumulated from the sub-plans when priced
        "batch": len(subplans),
    }
    root = MergeOp(label=f"batch[{len(subplans)}]", subplans=subplans)
    return ExecutionPlan(root=root, meta=meta, context=None)
