"""The single pricing engine: ExecutionPlan -> GemmTiming.

Every driver's cycle accounting lives here now.  The engine walks a plan
tree depth-first in child order and charges each op against the machine,
cache and pipeline models bound in the plan's :class:`PricingContext`,
accumulating into the same :class:`~repro.timing.breakdown.GemmTiming`
buckets — in the same order, with the same float expressions — as the
pre-refactor per-driver loops, so results are bit-for-bit identical
(golden-parity tested).

The module-level helpers (:func:`jit_sweep_cost`,
:func:`estimate_pack_tradeoff`, :func:`fused_pack_extra`,
:func:`operand_residency`) are the shared pricing primitives; the
lowerings also call them to make adaptive decisions (packing-optional,
orientation search) before the plan is built.  All underlying models are
pure or memoized, so decision-time and pricing-time calls return
identical values regardless of call order.

Tracing: pass a :class:`~repro.plan.trace.TraceSink` to
:meth:`Engine.price`.  Every emission site is guarded by
``if sink is not None`` and detail dicts are built only inside the
guard — pricing with ``sink=None`` does no extra work.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional, Tuple

from ..core.fusion import fused_pack_cycles
from ..core.planner import jit_tile_plan
from ..parallel.sync import barrier_cycles
from ..timing.breakdown import GemmTiming
from ..util.errors import DriverError, KernelDesignError, ParallelError
from ..util.validation import ceil_div
from .fingerprint import BoundedMemo, context_token
from .ir import (
    BarrierOp,
    CriticalPathOp,
    ExecutionPlan,
    FusedPackOp,
    GebpOp,
    JitSweepOp,
    MergeOp,
    PackOp,
    PlanNode,
    Section,
    ThreadStripsOp,
)
from .trace import TraceEvent, TraceSink


@dataclass
class ClassModels:
    """Per-core-class model bindings for heterogeneous strip pricing.

    Built once per :class:`~repro.parallel.executor.MultithreadedGemm`
    from the class's homogeneous view machine
    (:meth:`~repro.machine.config.MachineConfig.class_machine`); the
    engine prices a class-tagged strip against these instead of the
    base-class bindings, then converts the class-clock cycles to
    base-core cycles through ``freq_scale`` (class / base frequency).
    """

    name: str
    machine: Any
    cache: Any
    kernel_cost: Any
    packing: Any
    freq_scale: float

    def __repr__(self) -> str:
        # Stable identity for context tokens: the cache/kernel/packing
        # models are pure functions of the class machine and the shared
        # sharing/NUMA/bandwidth situation already tokened through the
        # cache model, so their default object reprs (which embed
        # process-specific addresses) must not leak into memo keys.
        return (
            f"ClassModels(name={self.name!r}, machine={self.machine!r}, "
            f"cache={_model_token_of(self.cache)}, "
            f"freq_scale={self.freq_scale!r})"
        )


def _model_token_of(obj: Any) -> str:
    from .fingerprint import model_token

    return model_token(obj)


@dataclass
class PricingContext:
    """The model bindings one plan is priced against.

    Which fields are set depends on the lowering: catalog drivers bind
    ``kernel_cost``/``catalog``; the reference SMM binds
    ``jit``/``analyzer``.  ``cache`` is already configured for the
    plan's sharing/NUMA situation (single-core or multithreaded).
    ``class_models`` is ``None`` on homogeneous machines; a
    heterogeneous lowering binds one :class:`ClassModels` per core
    class, indexed by the ``core_classes`` tags on
    :class:`~repro.plan.ir.ThreadStripsOp` strips.
    """

    machine: Any
    cache: Any
    packing: Any
    itemsize: int
    kernel_cost: Any = None
    catalog: Any = None
    jit: Any = None
    analyzer: Any = None
    warm: bool = True
    pack_edge_b: bool = True
    class_models: Any = None


# ---------------------------------------------------------------------------
# shared pricing primitives (also used by lowerings for adaptive decisions)
# ---------------------------------------------------------------------------
#
# The expensive primitives (kernel sweeps, pack-vs-penalty searches,
# fused-pack estimates) are memoized on (context token, arguments) in a
# bounded LRU: each is a pure function of its arguments and the context's
# model bindings, so a repeat call — lowerings make the same adaptive
# decision for every recurring shape of a sweep, and pricing re-asks the
# same question — returns the identical floats without re-running the
# scheduler underneath.  Counters surface through
# :func:`repro.plan.batch.batch_pricing_cache_info`.

_PRIMITIVE_MEMO = BoundedMemo(maxsize=16384)


def primitive_memo_info() -> dict:
    """Hit/miss counters of the pricing-primitive memo."""
    return _PRIMITIVE_MEMO.info()


def clear_primitive_memo() -> None:
    """Drop all memoized pricing-primitive results."""
    _PRIMITIVE_MEMO.clear()


def _memo_primitive(name: str, ctx: PricingContext, args: Tuple, compute):
    key = (name, context_token(ctx), args)
    hit = _PRIMITIVE_MEMO.get(key)
    if hit is not None:
        return hit
    # second chance: the persistent steady store (when a batch entry
    # point attached one to the analyzer) carries primitive results
    # across processes — keys are pure primitives, values round-trip
    # bit-exactly through JSON.
    store = getattr(ctx.analyzer, "store", None)
    if store is not None:
        stored = store.get_primitive(key)
        if stored is not None:
            _PRIMITIVE_MEMO.put(key, stored)
            return stored
    value = compute()
    _PRIMITIVE_MEMO.put(key, value)
    if store is not None:
        store.put_primitive(key, value)
    return value


def operand_residency(ctx: PricingContext, m: int, n: int, k: int) -> str:
    """Where the warm working set lives, by footprint (l1/l2/mem)."""
    if not ctx.warm:
        return "mem"
    footprint = (m * k + k * n + m * n) * ctx.itemsize
    if footprint <= 0.75 * ctx.machine.l1d.size_bytes:
        return "l1"
    if footprint <= 0.75 * ctx.cache.effective_l2_bytes:
        return "l2"
    return "mem"


def jit_sweep_cost(
    ctx: PricingContext,
    m: int,
    n: int,
    k: int,
    packed_b: bool,
    residency_pair: Optional[Tuple[Optional[str], Optional[str]]] = None,
    main: Any = None,
) -> Tuple[float, float]:
    """(cycles, executed_flops) of the JIT kernel sweep over (m, n, k).

    With ``main=None`` the JIT tries both orientations of its main tile
    (e.g. 8x12 and 12x8) and keeps the cheaper plan; an explicit ``main``
    pins the tile (the tuner prices each candidate separately).
    """
    pair = tuple(residency_pair) if residency_pair is not None else None
    return _memo_primitive(
        "jit_sweep_cost", ctx,
        (m, n, k, packed_b, pair, repr(main) if main is not None else None),
        lambda: _jit_sweep_cost_impl(
            ctx, m, n, k, packed_b, residency_pair, main
        ),
    )


def _jit_sweep_cost_impl(
    ctx: PricingContext,
    m: int,
    n: int,
    k: int,
    packed_b: bool,
    residency_pair: Optional[Tuple[Optional[str], Optional[str]]] = None,
    main: Any = None,
) -> Tuple[float, float]:
    candidates = (
        [main] if main is not None else ctx.jit.main_candidates(packed_b)
    )
    best = None
    for candidate_main in candidates:
        try:
            candidate = _jit_sweep_with_main(
                ctx, m, n, k, packed_b, candidate_main,
                residency_pair=residency_pair,
            )
        except KernelDesignError:
            continue  # this orientation does not fit the register file
        if best is None or candidate[0] < best[0]:
            best = candidate
    if best is None:
        raise DriverError(
            f"no feasible kernel plan for {m}x{n}x{k} "
            f"(packed_b={packed_b})"
        )
    return best


def _jit_sweep_with_main(
    ctx: PricingContext,
    m: int,
    n: int,
    k: int,
    packed_b: bool,
    main: Any,
    residency_pair=None,
) -> Tuple[float, float]:
    itemsize = ctx.itemsize
    if residency_pair is not None and residency_pair[0] is not None:
        a_res, b_res = residency_pair
    else:
        tiny = ctx.warm and (
            (m * k + k * n + m * n) * itemsize
            <= 0.75 * ctx.machine.l1d.size_bytes
        )
        a_res = b_res = "l1" if tiny else operand_residency(ctx, m, n, k)
    phase = ctx.cache.kernel_phase(
        m, n, k, main.mr, main.nr, itemsize,
        a_resident=a_res,
        b_resident=b_res,
        simd_lanes=ctx.jit.lanes,
    )
    cycles = 0.0
    executed = 0.0
    plan = jit_tile_plan(
        ctx.jit, m, n, pack_edge_b=ctx.pack_edge_b,
        main=main, strided=not packed_b,
    )
    for inv in plan:
        kernel = ctx.jit.generator.generate(inv.spec)
        state = ctx.analyzer.analyze(kernel)
        call = state.kernel_call_cycles(k)
        if packed_b and inv.spec.b_layout == "strided":
            # Fig. 8: inside an otherwise-packed plan, a strided
            # invocation is an N-edge sliver left unpacked — its elements
            # are discontiguous relative to the packed buffer.
            call += ctx.cache.strided_b_extra_stall(
                k, inv.padded_cols, itemsize
            )
        cycles += inv.calls * call
        executed += inv.calls * 2.0 * inv.padded_rows * inv.padded_cols * k
    cycles += phase.stall_cycles
    cycles = max(cycles, ctx.cache.dram_floor_cycles(phase))
    return cycles, executed


def pack_panel_estimate(
    ctx: PricingContext,
    m: int,
    n: int,
    k: int,
    source_residency: Optional[str] = None,
    main: Any = None,
) -> Tuple[float, int]:
    """(cycles, padded elements) for packing one (k x n) B panel."""
    main = main if main is not None else ctx.jit.main_spec
    padded = k * ceil_div(n, main.nr) * main.nr
    source = source_residency or operand_residency(ctx, m, n, k)
    cycles, _ = ctx.packing.pack_cycles(
        k, n, ctx.itemsize,
        source_contiguous=False,
        source_resident=source,
        padded_elements=padded,
    )
    return cycles, padded


def estimate_pack_tradeoff(
    ctx: PricingContext,
    m: int,
    n: int,
    k: int,
    source_residency: Optional[str] = None,
    main: Any = None,
) -> Tuple[float, float]:
    """(pack cycles, unpacked-kernel penalty cycles) for operand B."""
    return _memo_primitive(
        "estimate_pack_tradeoff", ctx,
        (m, n, k, source_residency,
         repr(main) if main is not None else None),
        lambda: _estimate_pack_tradeoff_impl(
            ctx, m, n, k, source_residency, main
        ),
    )


def _estimate_pack_tradeoff_impl(
    ctx: PricingContext,
    m: int,
    n: int,
    k: int,
    source_residency: Optional[str] = None,
    main: Any = None,
) -> Tuple[float, float]:
    panel = main if main is not None else ctx.jit.main_spec
    padded_b = k * ceil_div(n, panel.nr) * panel.nr
    source = source_residency or operand_residency(ctx, m, n, k)
    pack_cycles, _ = ctx.packing.pack_cycles(
        k, n, ctx.itemsize,
        source_contiguous=False,
        source_resident=source,
        padded_elements=padded_b,
    )
    # penalty of unpacked B: price both kernel variants and subtract.
    # An explicitly pinned main tile only applies to its own B layout,
    # so the opposite variant falls back to the orientation search.
    pair = (None if source_residency is None
            else (source_residency, source_residency))
    packed_main = (
        main if main is not None and main.b_layout == "packed" else None
    )
    strided_main = (
        main if main is not None and main.b_layout == "strided" else None
    )
    packed_kern, _ = jit_sweep_cost(
        ctx, m, n, k, packed_b=True, residency_pair=pair, main=packed_main
    )
    unpacked_kern, _ = jit_sweep_cost(
        ctx, m, n, k, packed_b=False, residency_pair=pair, main=strided_main
    )
    return pack_cycles, max(unpacked_kern - packed_kern, 0.0)


def fused_pack_extra(
    ctx: PricingContext, m: int, n: int, k: int
) -> float:
    """Pack-B cost when fused into kernel execution (Fig. 11)."""
    return _memo_primitive(
        "fused_pack_extra", ctx, (m, n, k),
        lambda: _fused_pack_extra_impl(ctx, m, n, k),
    )


def _fused_pack_extra_impl(
    ctx: PricingContext, m: int, n: int, k: int
) -> float:
    itemsize = ctx.itemsize
    main = ctx.jit.main_spec
    padded = k * ceil_div(n, main.nr) * main.nr
    source = operand_residency(ctx, m, n, k)
    phase = ctx.cache.packing_phase(
        k, n, itemsize, source_contiguous=False, source_resident=source
    )
    kernel = ctx.jit.generator.generate(main)
    state = ctx.analyzer.analyze(kernel)
    kern_cycles, _ = jit_sweep_cost(ctx, m, n, k, packed_b=True)
    estimate = fused_pack_cycles(
        ctx.machine.core, kernel, state, kern_cycles,
        padded, phase.stall_cycles, lanes=ctx.jit.lanes,
        source_contiguous=False,
    )
    return estimate.fused_extra_cycles


def _round_up(value: int, base: int) -> int:
    return ((value + base - 1) // base) * base


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------


class Engine:
    """Prices/executes ExecutionPlans against the bound models.

    With ``verify=True`` every top-level :meth:`price` call first runs
    the V3xx static plan analysis (:mod:`repro.verify.planlint`) and
    raises :class:`~repro.util.errors.PlanVerificationError` on any
    error-severity finding, so an illegal plan never reaches the pricing
    models.  The gate is opt-in (off by default for production parity
    speed; the test suite switches it on) and runs once per plan — the
    analyzer itself recurses into critical-path and merge sub-plans, so
    the engine's internal sub-plan pricing stays ungated.
    """

    def __init__(self, verify: bool = False) -> None:
        self.verify = verify

    def price(
        self, plan: ExecutionPlan, sink: Optional[TraceSink] = None
    ) -> GemmTiming:
        """Walk ``plan`` and accumulate its GemmTiming.

        With a ``sink``, structured trace events stream out in pricing
        order (see :mod:`repro.plan.trace`); with ``sink=None`` no event
        machinery runs at all.
        """
        if self.verify:
            from ..verify.planlint import assert_plan_ok

            assert_plan_ok(plan)
        return self._price(plan, sink)

    def price_batch(self, plans) -> list:
        """Price many plans through the memoized batch layer.

        Returns one :class:`GemmTiming` per plan, bit-for-bit equal to
        pricing each plan alone with :meth:`price` (the batch layer
        replays recorded charge tapes in the engine's own accumulation
        order — see :mod:`repro.plan.batch`).  The engine's
        verify-before-price gate applies per plan exactly as in
        :meth:`price`.
        """
        from .batch import price_batch

        return price_batch(plans, engine=self)

    def _price(
        self, plan: ExecutionPlan, sink: Optional[TraceSink] = None
    ) -> GemmTiming:
        """The ungated pricing walk (sub-plan recursion lands here)."""
        timing = GemmTiming(useful_flops=plan.meta.get("useful_flops", 0))
        if sink is not None:
            sink.emit(TraceEvent(
                "plan", str(plan.meta.get("driver", "plan")),
                detail=_meta_detail(plan),
            ))
        self._node(plan.root, plan.context, timing, sink)
        if sink is not None:
            sink.emit(TraceEvent(
                "total", str(plan.meta.get("driver", "plan")),
                cycles=timing.total_cycles,
                detail={
                    "kernel": timing.kernel_cycles,
                    "pack_a": timing.pack_a_cycles,
                    "pack_b": timing.pack_b_cycles,
                    "sync": timing.sync_cycles,
                    "other": timing.other_cycles,
                    "executed_flops": timing.executed_flops,
                    "useful_flops": timing.useful_flops,
                },
            ))
        return timing

    # -- dispatch -----------------------------------------------------------

    def _node(self, node: PlanNode, ctx, timing, sink) -> None:
        if isinstance(node, Section):
            for child in node.children:
                self._node(child, ctx, timing, sink)
        elif isinstance(node, PackOp):
            self._pack(node, ctx, timing, sink)
        elif isinstance(node, GebpOp):
            self._gebp(node, ctx, timing, sink)
        elif isinstance(node, JitSweepOp):
            self._jit_sweep(node, ctx, timing, sink)
        elif isinstance(node, FusedPackOp):
            self._fused_pack(node, ctx, timing, sink)
        elif isinstance(node, BarrierOp):
            self._barrier(node, ctx, timing, sink)
        elif isinstance(node, ThreadStripsOp):
            self._thread_strips(node, ctx, timing, sink)
        elif isinstance(node, CriticalPathOp):
            self._critical_path(node, ctx, timing, sink)
        elif isinstance(node, MergeOp):
            self._merge(node, timing, sink)
        else:
            raise DriverError(
                f"engine cannot price plan node kind {node.kind!r}"
            )

    # -- accumulation helpers ----------------------------------------------

    def _charge(self, timing, sink, node, bucket, cycles, detail=None):
        if bucket == "kernel":
            timing.kernel_cycles += cycles
        elif bucket == "pack_a":
            timing.pack_a_cycles += cycles
        elif bucket == "pack_b":
            timing.pack_b_cycles += cycles
        elif bucket == "sync":
            timing.sync_cycles += cycles
        elif bucket == "other":
            timing.other_cycles += cycles
        else:
            raise DriverError(f"unknown timing bucket {bucket!r}")
        if sink is not None:
            sink.emit(TraceEvent(
                "phase", node.label, bucket=bucket, cycles=cycles,
                detail=detail or {},
            ))

    def _add_executed(self, timing, sink, node, executed):
        timing.executed_flops += executed
        if sink is not None:
            sink.emit(TraceEvent(
                "flops", node.label, detail={"executed_flops": executed},
            ))

    def _add_useful(self, timing, useful):
        timing.useful_flops += useful

    def _add_extra(self, timing, key, value):
        timing.extra[key] = timing.extra.get(key, 0.0) + value

    # -- op pricing ---------------------------------------------------------

    def _pack(self, node: PackOp, ctx, timing, sink) -> None:
        cycles, elements = ctx.packing.pack_cycles(
            node.rows, node.cols, node.itemsize,
            source_contiguous=node.contiguous,
            source_resident=node.resident,
            padded_elements=node.padded_elements,
            cache_model=ctx.cache if node.explicit_cache else None,
        )
        if node.share is not None:
            cycles = cycles / node.share
        detail = None
        if sink is not None:
            detail = {
                "rows": node.rows, "cols": node.cols,
                "resident": node.resident,
                "padded_elements": node.padded_elements,
                "share": node.share, "elements": elements,
            }
        self._charge(timing, sink, node, node.bucket, cycles, detail)

    def _gebp(self, node: GebpOp, ctx, timing, sink) -> None:
        catalog = ctx.catalog
        phase = ctx.cache.kernel_phase(
            node.mc, node.nc, node.kc, catalog.mr, catalog.nr, node.itemsize,
            a_resident=node.a_resident,
            b_resident=node.b_resident,
            simd_lanes=ctx.kernel_cost.lanes,
            b_shared_by=node.b_shared_by,
        )
        cycles, executed = ctx.kernel_cost.gebp_kernel_cycles(
            catalog, node.mc, node.nc, node.kc, phase=phase, cache=ctx.cache
        )
        detail = None
        if sink is not None:
            detail = {
                "tile": f"{node.mc}x{node.nc}x{node.kc}",
                "a_resident": node.a_resident,
                "b_resident": node.b_resident,
            }
            sink.emit(TraceEvent(
                "cache", node.label, detail={
                    "stall_cycles": phase.stall_cycles,
                    "extra_load_cycles": phase.extra_load_cycles,
                    "l1_miss_lines": phase.l1_miss_lines,
                    "l2_miss_lines": phase.l2_miss_lines,
                    "dram_bytes": phase.dram_bytes,
                },
            ))
        self._charge(timing, sink, node, "kernel", cycles, detail)
        value = executed
        for factor in node.executed_factors:
            value = value * factor
        self._add_executed(timing, sink, node, value)

    def _jit_sweep(self, node: JitSweepOp, ctx, timing, sink) -> None:
        if sink is not None and ctx.jit is not None:
            requests0 = ctx.jit.stats.requests
            compiles0 = ctx.jit.stats.compiles
        pair = (
            None if node.a_resident is None
            else (node.a_resident, node.b_resident)
        )
        cycles, executed = jit_sweep_cost(
            ctx, node.m, node.n, node.k, node.packed_b,
            residency_pair=pair, main=node.main,
        )
        detail = None
        if sink is not None:
            detail = {
                "shape": f"{node.m}x{node.n}x{node.k}",
                "packed_b": node.packed_b,
                "a_resident": node.a_resident,
                "b_resident": node.b_resident,
            }
            if ctx.jit is not None:
                stats = ctx.jit.stats
                sink.emit(TraceEvent(
                    "kernel_cache", node.label, detail={
                        "requests": stats.requests - requests0,
                        "compiles": stats.compiles - compiles0,
                        "hit_rate": stats.hit_rate,
                    },
                ))
        self._charge(timing, sink, node, "kernel", cycles, detail)
        value = executed
        for factor in node.executed_factors:
            value = value * factor
        self._add_executed(timing, sink, node, value)

    def _fused_pack(self, node: FusedPackOp, ctx, timing, sink) -> None:
        cycles = fused_pack_extra(ctx, node.m, node.n, node.k)
        detail = None
        if sink is not None:
            detail = {"shape": f"{node.m}x{node.n}x{node.k}", "fused": True}
        self._charge(timing, sink, node, "pack_b", cycles, detail)

    def _barrier(self, node: BarrierOp, ctx, timing, sink) -> None:
        cycles = barrier_cycles(node.group, ctx.machine.numa)
        detail = None
        if sink is not None:
            detail = {"group": node.group}
        self._charge(timing, sink, node, "sync", cycles, detail)

    def _thread_strips(self, node: ThreadStripsOp, ctx, timing, sink) -> None:
        if node.core_classes and ctx.class_models is not None:
            self._thread_strips_classed(node, ctx, timing, sink)
            return
        max_chunk = max(node.chunks)
        pack_a, kernel, executed_max = self._strip_cost(ctx, node, max_chunk)
        detail = None
        if sink is not None:
            detail = {
                "max_chunk": max_chunk,
                "chunks": list(node.chunks),
                "pack_a_share": node.pack_a_share,
                "b_shared_by": node.b_shared_by,
            }
        self._charge(timing, sink, node, "pack_a", pack_a, detail)
        self._charge(timing, sink, node, "kernel", kernel, detail)
        # executed flops sum over the (at most two) distinct chunk sizes
        for chunk_size in set(ch for ch in node.chunks if ch > 0):
            count = sum(1 for ch in node.chunks if ch == chunk_size)
            if chunk_size == max_chunk:
                executed = executed_max
            else:
                _, _, executed = self._strip_cost(ctx, node, chunk_size)
            value = executed * count
            for factor in node.executed_factors:
                value = value * factor
            self._add_executed(timing, sink, node, value)

    def _class_context(self, ctx, cm: ClassModels):
        """The per-class view of ``ctx`` a tagged strip is priced with."""
        return replace(
            ctx,
            machine=cm.machine,
            cache=cm.cache,
            packing=cm.packing,
            kernel_cost=cm.kernel_cost,
            class_models=None,
        )

    def _thread_strips_classed(
        self, node: ThreadStripsOp, ctx, timing, sink
    ) -> None:
        """Heterogeneous strips: per-class costs, base-clock critical path.

        Each (chunk, class) pair is priced once with its class's
        kernel/cache/packing models, converted from class-clock to
        base-core cycles through ``freq_scale``; the barrier-bound
        critical path is the strip with the largest pack-A + kernel
        total, and executed flops sum over every distinct pair weighted
        by multiplicity.
        """
        tags = node.core_classes
        if len(tags) != len(node.chunks):
            raise ParallelError(
                f"{len(tags)} core-class tags for {len(node.chunks)} chunks"
            )
        counts: dict = {}
        for chunk, tag in zip(node.chunks, tags):
            if chunk <= 0:
                continue
            counts[(chunk, tag)] = counts.get((chunk, tag), 0) + 1
        if not counts:
            raise ParallelError("empty partition")
        priced = {}
        worst_key = None
        for chunk, tag in counts:
            cm = ctx.class_models[tag]
            cctx = self._class_context(ctx, cm)
            pack_a, kernel, executed = self._strip_cost(cctx, node, chunk)
            pack_a /= cm.freq_scale
            kernel /= cm.freq_scale
            priced[(chunk, tag)] = (pack_a, kernel, executed)
            if (worst_key is None
                    or pack_a + kernel > sum(priced[worst_key][:2])):
                worst_key = (chunk, tag)
        pack_a, kernel, _ = priced[worst_key]
        detail = None
        if sink is not None:
            detail = {
                "max_chunk": worst_key[0],
                "critical_class": worst_key[1],
                "chunks": list(node.chunks),
                "core_classes": list(tags),
                "pack_a_share": node.pack_a_share,
                "b_shared_by": node.b_shared_by,
            }
        self._charge(timing, sink, node, "pack_a", pack_a, detail)
        self._charge(timing, sink, node, "kernel", kernel, detail)
        for key, count in counts.items():
            value = priced[key][2] * count
            for factor in node.executed_factors:
                value = value * factor
            self._add_executed(timing, sink, node, value)

    def _strip_cost(self, ctx, node: ThreadStripsOp, m_strip: int):
        """(pack_a, kernel, executed_flops) for one thread's M-strip."""
        if m_strip <= 0:
            return 0.0, 0.0, 0.0
        catalog = ctx.catalog
        pack_a = 0.0
        kernel = 0.0
        executed = 0.0
        for ii in range(0, m_strip, node.mc):
            mcb = min(node.mc, m_strip - ii)
            pa, _ = ctx.packing.pack_cycles(
                mcb, node.kcb, node.itemsize,
                source_contiguous=node.pack_a_contiguous,
                source_resident=node.source_resident,
                padded_elements=_round_up(mcb, catalog.mr) * node.kcb,
            )
            pack_a += pa / node.pack_a_share
            phase = ctx.cache.kernel_phase(
                mcb, node.ncb, node.kcb, catalog.mr, catalog.nr,
                node.itemsize,
                a_resident="l2",
                b_resident="l2"
                if node.kcb * node.ncb * node.itemsize
                <= 0.5 * ctx.cache.effective_l2_bytes
                else "mem",
                simd_lanes=ctx.kernel_cost.lanes,
                b_shared_by=node.b_shared_by,
            )
            cyc, exe = ctx.kernel_cost.gebp_kernel_cycles(
                catalog, mcb, node.ncb, node.kcb, phase=phase, cache=ctx.cache
            )
            kernel += cyc
            executed += exe
        return pack_a, kernel, executed

    def _critical_path(self, node: CriticalPathOp, ctx, timing, sink) -> None:
        worst = None
        priced = {}
        for shape in set(node.chunks):
            sub = node.subplans.get(shape)
            if sub is None:
                continue
            t = self._price(sub, sink=None)
            priced[shape] = t
            if worst is None or t.total_cycles > worst.total_cycles:
                worst = t
        if worst is None:
            raise ParallelError("empty partition")
        detail = None
        if sink is not None:
            detail = {
                "grid_chunks": len(node.chunks),
                "distinct_shapes": len(priced),
            }
        self._charge(timing, sink, node, "kernel", worst.kernel_cycles, detail)
        self._charge(timing, sink, node, "pack_a", worst.pack_a_cycles, detail)
        self._charge(timing, sink, node, "pack_b", worst.pack_b_cycles, detail)
        executed = sum(
            priced[shape].executed_flops
            for shape in node.chunks if shape in priced
        )
        self._add_executed(timing, sink, node, executed)

    def _merge(self, node: MergeOp, timing, sink) -> None:
        # sub-plans are priced silently and only the roll-up is emitted,
        # so a trace's phase-event sums stay bit-equal to the buckets
        for sub in node.subplans:
            if sink is not None:
                sink.emit(TraceEvent(
                    "plan", str(sub.meta.get("driver", "plan")),
                    detail=_meta_detail(sub),
                ))
            t = self._price(sub, sink=None)
            self._add_useful(timing, t.useful_flops)
            self._charge(timing, sink, node, "kernel", t.kernel_cycles)
            self._charge(timing, sink, node, "pack_a", t.pack_a_cycles)
            self._charge(timing, sink, node, "pack_b", t.pack_b_cycles)
            self._charge(timing, sink, node, "sync", t.sync_cycles)
            self._charge(timing, sink, node, "other", t.other_cycles)
            self._add_executed(timing, sink, node, t.executed_flops)
            for key, val in t.extra.items():
                self._add_extra(timing, key, val)


def _meta_detail(plan: ExecutionPlan) -> dict:
    """JSON-safe plan metadata for the 'plan' trace event."""
    from .ir import _jsonable

    return {str(k): _jsonable(v) for k, v in plan.meta.items()}


#: the process-wide default engine (stateless; safe to share)
ENGINE = Engine()
