"""ExecutionPlan IR, lowering, and the single traced pricing engine.

Every GEMM driver in the repo — the Goto-structured library models, the
BLASFEO panel-major model, the paper's reference SMM, and the simulated
multithreaded executor — used to re-implement the paper's phase accounting
(kernel / pack-A / pack-B / sync, Fig. 6 and Table II) by hand.  This
package splits that into the BLIS-style normal form:

* **plan** (:mod:`repro.plan.ir`) — a typed tree of loop-nest sections,
  packing ops, micro-kernel invocations and sync points.  A plan only
  *describes* work; it holds no cycle numbers.
* **lowering** (:mod:`repro.plan.lower`) — each driver is a thin function
  from its library configuration to a plan.  All adaptive decisions
  (packing-optional, tile orientation, factorization) are made here and
  recorded in the plan's metadata.
* **engine** (:mod:`repro.plan.engine`) — the one place that prices plans
  against the machine, cache and pipeline models and accumulates a
  :class:`~repro.timing.breakdown.GemmTiming`.  Pricing optionally streams
  structured :mod:`trace <repro.plan.trace>` events (phase spans with cycle
  attribution, cache-model queries, kernel-cache hits, plan provenance)
  through a zero-overhead-when-off sink.

Golden parity: plan-derived timings are bit-for-bit identical to the
pre-refactor per-driver accounting (see
``tests/test_cross_driver_consistency.py``).

Batch pricing (:mod:`repro.plan.batch`) prices whole plan sets through
hash-consed subtrees and memoized charge tapes — bit-for-bit equal to
single-plan pricing, 10-100x faster on sweeps; identity comes from
:mod:`repro.plan.fingerprint`, the canonical-structure module the
verification memo shares.
"""

from .batch import (
    BATCH_PRICER,
    BatchPricer,
    GridPricing,
    ShapeGridPricer,
    batch_pricing_cache_info,
    clear_batch_pricing_cache,
    price_batch,
    price_plan,
    price_request_groups,
    skeleton_census,
    skeleton_key,
)
from .engine import ENGINE, Engine, PricingContext, operand_residency
from .fingerprint import (
    BoundedMemo,
    InternPool,
    canonical_node,
    canonical_plan_body,
    context_token,
    machine_token,
    node_fingerprint,
    plan_fingerprint,
    pricing_key,
)
from .ir import (
    BarrierOp,
    CriticalPathOp,
    ExecutionPlan,
    FusedPackOp,
    GebpOp,
    JitSweepOp,
    MergeOp,
    PackOp,
    PlanNode,
    Section,
    ThreadStripsOp,
)
from .lower import (
    lower_batch,
    lower_blasfeo,
    lower_goto,
    lower_library_mt,
    lower_reference,
)
from .trace import PHASE_BUCKETS, RecordingTraceSink, TraceEvent, TraceSink

__all__ = [
    "ExecutionPlan",
    "PlanNode",
    "Section",
    "PackOp",
    "GebpOp",
    "JitSweepOp",
    "FusedPackOp",
    "BarrierOp",
    "ThreadStripsOp",
    "CriticalPathOp",
    "MergeOp",
    "Engine",
    "ENGINE",
    "PricingContext",
    "operand_residency",
    "BatchPricer",
    "BATCH_PRICER",
    "GridPricing",
    "ShapeGridPricer",
    "price_plan",
    "price_batch",
    "price_request_groups",
    "batch_pricing_cache_info",
    "clear_batch_pricing_cache",
    "skeleton_key",
    "skeleton_census",
    "BoundedMemo",
    "InternPool",
    "canonical_node",
    "canonical_plan_body",
    "context_token",
    "machine_token",
    "node_fingerprint",
    "plan_fingerprint",
    "pricing_key",
    "lower_goto",
    "lower_blasfeo",
    "lower_reference",
    "lower_library_mt",
    "lower_batch",
    "TraceSink",
    "RecordingTraceSink",
    "TraceEvent",
    "PHASE_BUCKETS",
]
