"""Structured trace events emitted by the pricing engine.

The engine guards every emission with ``if sink is not None`` and builds
event details only inside that guard, so tracing is zero-overhead when
off.  Event kinds:

``plan``
    One per priced plan (and per sub-plan of a batch): driver, shape,
    threads, useful flops, the lowering's decision and provenance.
``phase``
    One per bucket charge, in charge order: ``bucket`` names the
    :class:`~repro.timing.breakdown.GemmTiming` field (``kernel`` /
    ``pack_a`` / ``pack_b`` / ``sync`` / ``other``) and ``cycles`` the
    exact amount added — replaying phase events in order reproduces the
    priced buckets bit-for-bit.
``flops``
    One per executed-flops charge (``detail["executed_flops"]``).
``cache``
    A cache-model query: the phase's stall cycles, miss lines and DRAM
    bytes for one kernel sweep.
``kernel_cache``
    JIT kernel-cache activity around one sweep: request/compile deltas
    and the running hit rate.
``total``
    Final roll-up of the priced timing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

#: bucket names phase events may carry, in GemmTiming field order
PHASE_BUCKETS = ("kernel", "pack_a", "pack_b", "sync", "other")


@dataclass
class TraceEvent:
    """One engine observation (see module docstring for kinds)."""

    kind: str
    label: str
    bucket: Optional[str] = None
    cycles: Optional[float] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dump (None fields omitted)."""
        out: Dict[str, Any] = {"kind": self.kind, "label": self.label}
        if self.bucket is not None:
            out["bucket"] = self.bucket
        if self.cycles is not None:
            out["cycles"] = self.cycles
        if self.detail:
            out["detail"] = self.detail
        return out


class TraceSink:
    """Receiver interface for engine trace events."""

    def emit(self, event: TraceEvent) -> None:
        """Consume one event."""
        raise NotImplementedError


class RecordingTraceSink(TraceSink):
    """Buffers every event in order; the CLI/diagnose consumer."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        """Append ``event`` to the buffer."""
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def bucket_totals(self) -> Dict[str, float]:
        """Per-bucket cycle sums of the phase events, in emission order.

        Accumulates with the same left-to-right float additions the
        engine used, so the totals equal the priced ``GemmTiming``
        buckets exactly.
        """
        totals = {bucket: 0.0 for bucket in PHASE_BUCKETS}
        for event in self.events:
            if event.kind == "phase" and event.bucket in totals:
                totals[event.bucket] += event.cycles
        return totals

    def to_json(self, indent: Optional[int] = None) -> str:
        """The whole event stream as a JSON array."""
        return json.dumps(
            [event.to_dict() for event in self.events], indent=indent
        )
