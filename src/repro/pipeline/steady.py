"""Steady-state analysis of micro-kernel loop bodies.

A GEBP micro-kernel executes its loop body ``kc/unroll`` times; what matters
for performance is the *asymptotic* cycles per body iteration once the
out-of-order window reaches steady state.  :class:`SteadyStateAnalyzer`
replicates the body behind the prologue, schedules the whole dynamic stream
once, and measures the completion-time delta across the trailing iterations
(the leading ones are warm-up).  A kernel *call* is then composed as::

    cycles(kc) = startup + n_body * cycles_per_iter + epilogue

with ``n_body = ceil(kc / unroll)`` — charging a full body for a remainder
iteration, which reproduces the mild preference for ``kc`` being a multiple
of the unroll factor seen on real hardware.

Results are memoized per (kernel, load-penalty) pair because GEMM drivers
ask for the same micro-kernel thousands of times per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..isa.sequence import KernelSequence
from ..machine.config import CoreConfig
from ..util.errors import ScheduleError
from ..util.validation import ceil_div
from .scheduler import OoOScheduler


@dataclass(frozen=True)
class SteadyState:
    """Asymptotic timing of one micro-kernel on one core model."""

    kernel_name: str
    cycles_per_iter: float
    startup_cycles: float
    epilogue_cycles: float
    flops_per_iter: int
    unroll: int

    @property
    def flops_per_cycle(self) -> float:
        """Steady-state useful flops per cycle."""
        if self.cycles_per_iter <= 0:
            return 0.0
        return self.flops_per_iter / self.cycles_per_iter

    def kernel_call_cycles(self, kc: int) -> float:
        """Cycles for one micro-kernel invocation over ``kc`` k-steps."""
        if kc <= 0:
            raise ScheduleError(f"kc must be positive, got {kc}")
        n_body = ceil_div(kc, self.unroll)
        return self.startup_cycles + n_body * self.cycles_per_iter + self.epilogue_cycles

    def efficiency(self, core: CoreConfig, dtype) -> float:
        """Steady-state fraction of the core's peak flop rate."""
        return self.flops_per_cycle / core.flops_per_cycle(dtype)


class SteadyStateAnalyzer:
    """Measures steady-state cycles/iteration of kernel bodies."""

    def __init__(
        self,
        core: CoreConfig,
        warmup_iters: int = 16,
        measure_iters: int = 32,
    ) -> None:
        if warmup_iters < 1 or measure_iters < 4:
            raise ScheduleError(
                f"need warmup>=1 and measure>=4, got {warmup_iters}/{measure_iters}"
            )
        self.core = core
        self.warmup_iters = warmup_iters
        self.measure_iters = measure_iters
        self._scheduler = OoOScheduler(core)
        self._cache: Dict[Tuple[str, float], SteadyState] = {}
        #: optional persistent backing table (see repro.pipeline.steadystore);
        #: attached by batch entry points, never by default
        self.store = None

    def analyze(
        self, kernel: KernelSequence, extra_load_cycles: float = 0.0
    ) -> SteadyState:
        """Steady-state profile of ``kernel`` with the given load penalty.

        Memoized by kernel *name* (kernel names encode the full generating
        spec), never by object identity — id-based keys would alias when a
        kernel is garbage collected and a new one reuses its address.
        """
        key = (kernel.name, round(float(extra_load_cycles), 3))
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        if self.store is not None:
            stored = self.store.get(kernel.name, key[1])
            if stored is not None:
                self._cache[key] = stored
                return stored

        n_iters = self.warmup_iters + self.measure_iters
        stream = list(kernel.prologue)
        marks: List[int] = []
        for _ in range(n_iters):
            stream.extend(kernel.body)
            marks.append(len(stream))
        profile = self._scheduler.completion_profile(
            stream, marks, extra_load_cycles
        )

        # Per-iteration deltas over the measured tail; steady state is their
        # mean (they converge to a repeating pattern, so the mean over a
        # whole number of periods is exact for practical purposes).
        deltas = [
            profile[i] - profile[i - 1]
            for i in range(self.warmup_iters, n_iters)
        ]
        cycles_per_iter = sum(deltas) / len(deltas)
        if cycles_per_iter <= 0:
            raise ScheduleError(
                f"kernel {kernel.name!r}: non-positive steady-state "
                f"cycles/iter {cycles_per_iter}"
            )
        startup = max(profile[self.warmup_iters - 1]
                      - self.warmup_iters * cycles_per_iter, 0.0)

        epilogue_cycles = 0.0
        if kernel.epilogue:
            tail = self._scheduler.run(
                list(kernel.epilogue), extra_load_cycles
            )
            epilogue_cycles = tail.total_cycles

        state = SteadyState(
            kernel_name=kernel.name,
            cycles_per_iter=cycles_per_iter,
            startup_cycles=startup,
            epilogue_cycles=epilogue_cycles,
            flops_per_iter=kernel.body_flops,
            unroll=kernel.unroll,
        )
        self._cache[key] = state
        if self.store is not None:
            self.store.put(kernel.name, key[1], state)
        return state

    def kernel_call_cycles(
        self, kernel: KernelSequence, kc: int, extra_load_cycles: float = 0.0
    ) -> float:
        """Convenience: cycles of one call of ``kernel`` over ``kc`` k-steps."""
        return self.analyze(kernel, extra_load_cycles).kernel_call_cycles(kc)

    def cache_info(self) -> Dict[str, int]:
        """Memo statistics: distinct (kernel, load-penalty) pairs analyzed.

        Tuner warm-ups schedule the same micro-kernels across many shapes;
        this counter is how the ``repro tune`` CLI reports how much
        scheduling work the memo absorbed.
        """
        return {"entries": len(self._cache)}


def bound_analysis(kernel: KernelSequence, core: CoreConfig) -> Dict[str, float]:
    """Closed-form lower bounds on cycles/iteration, per limiting resource.

    Returns the port bound for each class, the dispatch bound and the
    accumulator-chain (latency) bound.  Useful for explaining *why* a kernel
    is slow: the scheduler's measured cycles/iteration is always >= the max
    of these bounds.
    """
    hist = kernel.port_histogram()
    bounds: Dict[str, float] = {}
    for port, count in hist.items():
        bounds[f"port:{port}"] = count / core.ports[port]
    bounds["dispatch"] = len(kernel.body) / core.dispatch_width
    # Each fma accumulator is a loop-carried chain; with C independent
    # chains and latency L over P pipes, the body needs at least
    # (fma_count / min(C, P * L) ) * L ... simplest correct bound:
    # chains limit throughput to C/L fmas per cycle; ports to P per cycle.
    fma_count = hist.get("fma", 0)
    if fma_count:
        chains = _accumulator_chain_count(kernel)
        latency = core.latencies["fma"]
        per_cycle = min(chains / latency, core.ports["fma"])
        bounds["fma-chains"] = fma_count / per_cycle if per_cycle > 0 else float("inf")
    return bounds


def _accumulator_chain_count(kernel: KernelSequence) -> int:
    """Number of distinct accumulator registers carried across the body."""
    accs = set()
    for ins in kernel.body:
        if ins.port == "fma" and ins.writes:
            dst = ins.writes[0]
            if dst in ins.reads:  # read-modify-write accumulator
                accs.add(dst)
    return max(len(accs), 1)
