"""Persistent steady-state kernel analyses: install once, look up forever.

Scheduling a micro-kernel's dynamic stream through the out-of-order model
is the single most expensive step in pricing (tens of milliseconds per
distinct kernel); a full golden sweep touches a hundred-odd kernels.  The
in-process memo on :class:`~repro.pipeline.steady.SteadyStateAnalyzer`
absorbs repeats within one process, but every fresh CLI invocation pays
the whole cost again.  This module is the IAAT move (PAPERS.md): do the
expensive analysis once per (machine, kernel, load penalty), persist it,
and make every later process an O(1) table lookup.

Discipline mirrors :class:`~repro.tuning.cache.TuningCache`:

* the on-disk JSON is keyed by a **core fingerprint** — a hash of the
  core config repr, the analyzer's warmup/measure iteration counts, the
  store schema version and the code version.  Any mismatch invalidates
  the entire file (a steady-state for a different register file, ROB
  size or scheduler revision is worse than none);
* writes are **atomic** (temp file + rename in the same directory);
* floats round-trip exactly: ``json`` serializes via ``repr`` and
  ``float(repr(x)) == x`` for finite doubles, so a stored analysis is
  bit-for-bit the one computed — golden-timing parity holds across the
  cold/warm boundary.

The store is **opt-in per analyzer** (``attach_steady_store``): batch
entry points (``repro lint --plans``, ``make bench-record``, tuner
warm-ups) attach it to the shared analyzer and save on exit; unit tests
and one-shot pricing never touch disk.  Disable with
``REPRO_STEADY_CACHE=0`` or redirect with ``REPRO_STEADY_CACHE=path``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional

from .steady import SteadyState, SteadyStateAnalyzer

#: bump when SteadyState fields or the scheduler model change incompatibly
STEADY_SCHEMA_VERSION = 1

#: default on-disk location (cwd, next to the tuning cache)
DEFAULT_STORE_PATH = ".repro_steady_cache.json"

#: environment override: a path, or "0"/"off" to disable attachment
ENV_VAR = "REPRO_STEADY_CACHE"

_FIELDS = ("cycles_per_iter", "startup_cycles", "epilogue_cycles",
           "flops_per_iter", "unroll")


def core_fingerprint(analyzer: SteadyStateAnalyzer) -> str:
    """Hash identifying (core config, analyzer params, schema, code)."""
    from .. import __version__

    payload = "|".join((
        repr(analyzer.core),
        f"warmup={analyzer.warmup_iters}",
        f"measure={analyzer.measure_iters}",
        f"schema={STEADY_SCHEMA_VERSION}",
        f"code={__version__}",
    ))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class SteadyStateStore:
    """On-disk table of steady-state analyses for one core fingerprint."""

    def __init__(self, path: str = DEFAULT_STORE_PATH,
                 fingerprint: str = "") -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.primitive_hits = 0
        self.primitive_misses = 0
        self._dirty = False
        self._entries: Dict[str, SteadyState] = {}
        self._primitives: Dict[str, object] = {}
        self._load()

    @staticmethod
    def _key(kernel_name: str, penalty_key: float) -> str:
        return f"{kernel_name}@{penalty_key!r}"

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict):
            return
        if raw.get("fingerprint") != self.fingerprint:
            # wrong machine/schema/code: drop wholesale, rewrite on save
            self.invalidations += 1
            self._dirty = True
            return
        for key, fields in raw.get("entries", {}).items():
            name = key.rsplit("@", 1)[0]
            try:
                self._entries[key] = SteadyState(
                    kernel_name=name,
                    **{f: fields[f] for f in _FIELDS},
                )
            except (KeyError, TypeError):
                continue
        primitives = raw.get("primitives", {})
        if isinstance(primitives, dict):
            self._primitives = primitives

    def get(self, kernel_name: str,
            penalty_key: float) -> Optional[SteadyState]:
        """The stored analysis for (kernel, load penalty), or None."""
        state = self._entries.get(self._key(kernel_name, penalty_key))
        if state is None:
            self.misses += 1
            return None
        self.hits += 1
        return state

    def put(self, kernel_name: str, penalty_key: float,
            state: SteadyState) -> None:
        """Store one analysis; persisted on the next :meth:`save`."""
        self._entries[self._key(kernel_name, penalty_key)] = state
        self._dirty = True

    def get_primitive(self, key: tuple):
        """Stored pricing-primitive value for a memo key, or None.

        Keys are the engine's ``(name, context_token, args)`` tuples —
        pure primitives, so ``repr`` is a stable serialization.  Values
        are floats or tuples of floats; JSON turns tuples into lists,
        so restore the tuple shape on the way out (repr round-trip
        keeps every float bit-exact).
        """
        raw = self._primitives.get(repr(key))
        if raw is None:
            self.primitive_misses += 1
            return None
        self.primitive_hits += 1
        return tuple(raw) if isinstance(raw, list) else raw

    def put_primitive(self, key: tuple, value) -> None:
        """Store one pricing-primitive value under its memo key."""
        self._primitives[repr(key)] = value
        self._dirty = True

    def save(self) -> bool:
        """Atomically write the store if it changed; True when written."""
        if not self._dirty:
            return False
        payload = {
            "fingerprint": self.fingerprint,
            "schema": STEADY_SCHEMA_VERSION,
            "entries": {
                key: {f: getattr(state, f) for f in _FIELDS}
                for key, state in sorted(self._entries.items())
            },
            "primitives": dict(sorted(self._primitives.items())),
        }
        text = json.dumps(payload, indent=1, sort_keys=True)
        directory = self.path.parent if str(self.path.parent) else Path(".")
        fd, tmp = tempfile.mkstemp(
            dir=str(directory), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text + "\n")
            os.replace(tmp, str(self.path))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self._dirty = False
        return True

    def __len__(self) -> int:
        return len(self._entries)

    def info(self) -> Dict[str, int]:
        """Counter snapshot: entries, hits/misses, invalidations."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "primitives": len(self._primitives),
            "primitive_hits": self.primitive_hits,
            "primitive_misses": self.primitive_misses,
        }


#: stores attached this process, for :func:`store_stats` roll-up
_ATTACHED: Dict[str, SteadyStateStore] = {}


def attach_steady_store(
    analyzer: SteadyStateAnalyzer,
    path: Optional[str] = None,
) -> Optional[SteadyStateStore]:
    """Attach (or reuse) a persistent store on ``analyzer``.

    Resolves the path from ``path`` or the ``REPRO_STEADY_CACHE``
    environment variable (``0``/``off``/empty value disables and returns
    None).  One store instance is shared per resolved path, so repeated
    attachment from the CLI and the benchmark recorder agree.
    """
    env = os.environ.get(ENV_VAR)
    if path is None:
        if env is not None and env.strip().lower() in ("", "0", "off"):
            return None
        path = env if env else DEFAULT_STORE_PATH
    fingerprint = core_fingerprint(analyzer)
    key = f"{os.path.abspath(path)}#{fingerprint}"
    store = _ATTACHED.get(key)
    if store is None:
        store = SteadyStateStore(path=path, fingerprint=fingerprint)
        _ATTACHED[key] = store
    analyzer.store = store
    return store


def save_attached_stores() -> int:
    """Save every dirty attached store; returns how many were written."""
    return sum(1 for store in _ATTACHED.values() if store.save())


def store_stats() -> Dict[str, int]:
    """Aggregate counters across every store attached this process."""
    totals = {"stores": len(_ATTACHED), "entries": 0, "hits": 0,
              "misses": 0, "invalidations": 0, "primitives": 0,
              "primitive_hits": 0, "primitive_misses": 0}
    for store in _ATTACHED.values():
        for field in ("hits", "misses", "invalidations",
                      "primitive_hits", "primitive_misses"):
            totals[field] += getattr(store, field)
        totals["entries"] += len(store)
        totals["primitives"] += len(store._primitives)
    return totals
