"""Out-of-order dataflow scheduler for kernel instruction streams.

This is the mechanism that turns an instruction sequence into cycles.  It
models the resources the paper's micro-architectural analysis invokes:

* **dispatch width** — at most ``dispatch_width`` instructions enter the
  window per cycle, in program order;
* **re-order buffer** — instruction *i* cannot dispatch until instruction
  ``i - rob_entries`` has retired (retirement is in order);
* **execution ports** — each instruction occupies one unit of its port
  class for one cycle (units are fully pipelined);
* **true dependences** — register renaming is assumed perfect, so only
  read-after-write edges through architectural registers delay issue.
  Loop-carried accumulator chains (``fmla v16, ...`` every iteration)
  survive renaming and are what limits edge micro-kernels;
* **load latency** — an L1 hit costs ``latencies['load']`` cycles; the
  caller adds an *average* extra penalty per load to fold in cache misses
  measured by the cache model (composition documented in DESIGN.md §5).

A post-incremented load's base-register writeback becomes available after
one cycle (address generation), not after the full load latency — otherwise
the ``pA`` pointer chain would serialize all loads, which real hardware
does not do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..isa.instructions import Instruction
from ..isa.registers import is_xreg
from ..machine.config import CoreConfig
from ..util.errors import ScheduleError


@dataclass(frozen=True)
class ScheduledOp:
    """Issue/completion record for one dynamic instruction."""

    index: int
    text: str
    port: str
    dispatch_cycle: int
    issue_cycle: float
    complete_cycle: float
    #: what the instruction waited on last: 'none' (issued at dispatch),
    #: 'dependency' (operand not ready), 'port' (unit busy),
    #: 'window' (scheduling window full), 'dispatch' (front-end pace)
    stall_reason: str = "none"


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling one instruction stream."""

    total_cycles: float
    instructions: int
    flops: int
    mem_bytes: int
    port_busy: Dict[str, int]
    ops: Optional[Tuple[ScheduledOp, ...]] = None

    @property
    def flops_per_cycle(self) -> float:
        """Achieved useful flops per cycle."""
        if self.total_cycles <= 0:
            return 0.0
        return self.flops / self.total_cycles

    def port_utilization(self, core: CoreConfig) -> Dict[str, float]:
        """Fraction of port-class issue slots used over the whole run."""
        if self.total_cycles <= 0:
            return {p: 0.0 for p in self.port_busy}
        return {
            port: busy / (core.ports[port] * self.total_cycles)
            for port, busy in self.port_busy.items()
        }


class OoOScheduler:
    """Greedy list scheduler over the dataflow graph of a dynamic stream."""

    #: bound on the per-instruction metadata cache (entries are tiny;
    #: kernel bodies reuse the same Instruction objects thousands of
    #: times per stream, so the cache is what makes scheduling cheap)
    META_CACHE_MAX = 1 << 18

    def __init__(self, core: CoreConfig) -> None:
        self.core = core
        # id-keyed decode cache: (instruction, base latency, is_load,
        # port, reads, (reg, is_postinc_writeback) writes, flops, bytes).
        # The strong instruction reference keeps ids from being reused.
        self._meta: Dict[int, tuple] = {}

    def _decode(self, ins: Instruction) -> tuple:
        cached = self._meta.get(id(ins))
        if cached is not None and cached[0] is ins:
            return cached
        lat = self.core.latencies.get(ins.latency_key)
        if lat is None:
            raise ScheduleError(
                f"{ins.text!r}: unknown latency key {ins.latency_key!r}"
            )
        is_load = ins.is_load
        cached = (
            ins, float(lat), is_load, ins.port, tuple(ins.reads),
            tuple((reg, is_load and is_xreg(reg)) for reg in ins.writes),
            ins.flops, ins.mem_bytes,
        )
        if len(self._meta) >= self.META_CACHE_MAX:
            self._meta.clear()
        self._meta[id(ins)] = cached
        return cached

    def run(
        self,
        stream: Iterable[Instruction],
        extra_load_cycles: float = 0.0,
        record_ops: bool = False,
    ) -> ScheduleResult:
        """Schedule ``stream`` and return cycle counts.

        ``extra_load_cycles`` is added to every load's result latency; pass
        the cache model's average miss penalty per load to couple the two
        models.  ``record_ops`` keeps per-instruction issue records (used by
        the Figure-7 schedule visualization; costs memory, off by default).
        """
        if extra_load_cycles < 0:
            raise ScheduleError(
                f"extra_load_cycles must be >= 0, got {extra_load_cycles}"
            )
        core = self.core
        width = core.dispatch_width
        rob = core.rob_entries
        decode = self._decode
        ceil = math.ceil

        # Port occupancy per integer cycle slot.  True out-of-order issue
        # lets a ready instruction fill an idle slot *before* slots already
        # claimed by older-but-stalled instructions, so we track per-cycle
        # usage counts instead of a monotonic per-unit free time.
        slot_usage: Dict[str, Dict[int, int]] = {p: {} for p in core.ports}
        # All slots below this hint are full (scan shortcut).
        full_below: Dict[str, int] = {p: 0 for p in core.ports}
        # Cycle at which the current value of each architectural register
        # becomes available.  Missing entry = ready at cycle 0 (live-in).
        reg_ready: Dict[str, float] = {}
        # In-order retirement times for the ROB occupancy constraint.
        retire: List[float] = []
        # Issue times for the finite scheduling-window constraint.
        window = core.scheduler_window
        issue_times: List[float] = []

        port_busy: Dict[str, int] = {port: 0 for port in core.ports}
        ops: List[ScheduledOp] = []
        n = 0
        flops = 0
        mem_bytes = 0
        last_complete = 0.0
        # dispatch is in order: a ROB-stalled instruction delays all
        # younger instructions behind it
        dispatch_floor = 0

        for index, ins in enumerate(stream):
            (_, result_latency, is_load, ins_port, reads, writes,
             ins_flops, ins_mem_bytes) = decode(ins)
            if is_load:
                result_latency += extra_load_cycles

            dispatch_cycle = max(index // width, dispatch_floor)
            if index >= rob:
                # Cannot dispatch until the instruction leaving the ROB has
                # retired (in-order retirement).
                dispatch_cycle = max(dispatch_cycle, int(retire[index - rob]))
            dispatch_floor = dispatch_cycle

            operands_ready = 0.0
            for reg in reads:
                t = reg_ready.get(reg)
                if t is not None and t > operands_ready:
                    operands_ready = t

            # Earliest integer cycle slot with port capacity left; all slots
            # below full_below[port] are known full.
            window_ready = (
                issue_times[index - window] if index >= window else 0.0
            )
            ready = max(float(dispatch_cycle), operands_ready, window_ready)
            capacity = core.ports[ins_port]
            usage = slot_usage[ins_port]
            slot = max(ceil(ready), full_below[ins_port])
            while usage.get(slot, 0) >= capacity:
                slot += 1
            usage[slot] = usage.get(slot, 0) + 1
            hint = full_below[ins_port]
            while usage.get(hint, 0) >= capacity:
                hint += 1
            full_below[ins_port] = hint
            issue = float(slot)
            complete = issue + result_latency

            for reg, postinc in writes:
                if postinc:
                    # post-increment writeback: address available next cycle
                    reg_ready[reg] = issue + 1.0
                else:
                    reg_ready[reg] = complete

            prev_retire = retire[-1] if retire else 0.0
            retire.append(max(prev_retire, complete))
            issue_times.append(issue)

            port_busy[ins_port] += 1
            n += 1
            flops += ins_flops
            mem_bytes += ins_mem_bytes
            if complete > last_complete:
                last_complete = complete
            if record_ops:
                # attribute the final wait: what bound the issue cycle?
                if issue > math.ceil(ready):
                    reason = "port"
                elif operands_ready >= max(float(dispatch_cycle),
                                           window_ready) \
                        and operands_ready > 0:
                    reason = "dependency"
                elif window_ready > float(dispatch_cycle):
                    reason = "window"
                elif dispatch_cycle > 0:
                    reason = "dispatch"
                else:
                    reason = "none"
                ops.append(
                    ScheduledOp(
                        index=index,
                        text=ins.text,
                        port=ins.port,
                        dispatch_cycle=dispatch_cycle,
                        issue_cycle=issue,
                        complete_cycle=complete,
                        stall_reason=reason,
                    )
                )

        if n == 0:
            raise ScheduleError("cannot schedule an empty instruction stream")
        return ScheduleResult(
            total_cycles=last_complete,
            instructions=n,
            flops=flops,
            mem_bytes=mem_bytes,
            port_busy=port_busy,
            ops=tuple(ops) if record_ops else None,
        )

    def completion_profile(
        self,
        stream: Sequence[Instruction],
        marks: Sequence[int],
        extra_load_cycles: float = 0.0,
    ) -> List[float]:
        """Completion cycle of the last instruction at each mark index.

        ``marks`` are exclusive prefix lengths into ``stream``; used by the
        steady-state analyzer to measure per-iteration deltas without
        re-scheduling prefixes repeatedly.
        """
        for m in marks:
            if not 0 < m <= len(stream):
                raise ScheduleError(f"mark {m} out of range (1..{len(stream)})")
        result = self.run(stream, extra_load_cycles, record_ops=True)
        assert result.ops is not None
        profile: List[float] = []
        best = 0.0
        it = iter(sorted(marks))
        next_mark = next(it, None)
        for op in result.ops:
            best = max(best, op.complete_cycle)
            while next_mark is not None and op.index + 1 == next_mark:
                profile.append(best)
                next_mark = next(it, None)
        return profile


def render_schedule(result: ScheduleResult, max_rows: int = 64) -> str:
    """Text rendering of a recorded schedule: issue/completion cycles plus
    what each instruction waited on."""
    if result.ops is None:
        raise ScheduleError("schedule was not recorded; pass record_ops=True")
    lines = [
        f"{'idx':>4} {'issue':>7} {'done':>7} {'port':<6} "
        f"{'waited-on':<10} text"
    ]
    for op in result.ops[:max_rows]:
        lines.append(
            f"{op.index:>4} {op.issue_cycle:>7.1f} {op.complete_cycle:>7.1f} "
            f"{op.port:<6} {op.stall_reason:<10} {op.text}"
        )
    if len(result.ops) > max_rows:
        lines.append(f"... ({len(result.ops) - max_rows} more)")
    return "\n".join(lines)
