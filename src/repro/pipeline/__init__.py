"""Core pipeline model: OoO scheduling and steady-state kernel analysis."""

from .diagnose import (
    KernelDiagnosis,
    TraceSummary,
    diagnose_kernel,
    summarize_trace,
)
from .scheduler import OoOScheduler, ScheduleResult, ScheduledOp, render_schedule
from .steady import SteadyState, SteadyStateAnalyzer, bound_analysis

__all__ = [
    "OoOScheduler",
    "ScheduleResult",
    "ScheduledOp",
    "render_schedule",
    "SteadyState",
    "SteadyStateAnalyzer",
    "bound_analysis",
    "KernelDiagnosis",
    "diagnose_kernel",
    "TraceSummary",
    "summarize_trace",
]
