"""Core pipeline model: OoO scheduling and steady-state kernel analysis."""

from .diagnose import (
    KernelDiagnosis,
    TraceSummary,
    diagnose_kernel,
    summarize_trace,
)
from .scheduler import OoOScheduler, ScheduleResult, ScheduledOp, render_schedule
from .steady import SteadyState, SteadyStateAnalyzer, bound_analysis
from .steadystore import (
    SteadyStateStore,
    attach_steady_store,
    core_fingerprint,
    save_attached_stores,
    store_stats,
)

__all__ = [
    "OoOScheduler",
    "ScheduleResult",
    "ScheduledOp",
    "render_schedule",
    "SteadyState",
    "SteadyStateAnalyzer",
    "bound_analysis",
    "SteadyStateStore",
    "attach_steady_store",
    "core_fingerprint",
    "save_attached_stores",
    "store_stats",
    "KernelDiagnosis",
    "diagnose_kernel",
    "TraceSummary",
    "summarize_trace",
]
