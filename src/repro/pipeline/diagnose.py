"""Kernel diagnosis: why is this kernel as fast (or slow) as it is?

Combines the steady-state measurement, the analytic resource bounds and
the scheduler's per-instruction stall attribution into one explanation —
the "kernel doctor" behind ``python -m repro kernel``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..isa.sequence import KernelSequence
from ..machine.config import CoreConfig
from .scheduler import OoOScheduler
from .steady import SteadyStateAnalyzer, bound_analysis


@dataclass(frozen=True)
class KernelDiagnosis:
    """One kernel's performance explanation on one core."""

    kernel_name: str
    cycles_per_kstep: float
    efficiency: float
    bounds: Dict[str, float]
    binding_resource: str
    stall_histogram: Dict[str, int]

    def render(self) -> str:
        """Human-readable multi-line explanation."""
        lines = [
            f"kernel {self.kernel_name}",
            f"  steady state : {self.cycles_per_kstep:.2f} cycles/k-step "
            f"({self.efficiency:.1%} of the FMA pipe)",
            f"  binding      : {self.binding_resource}",
            "  lower bounds (cycles/iteration):",
        ]
        for name, value in sorted(self.bounds.items(),
                                  key=lambda kv: -kv[1]):
            lines.append(f"    {name:<12} {value:8.2f}")
        total = sum(self.stall_histogram.values()) or 1
        lines.append("  issue-wait attribution (steady-state body):")
        for reason, count in sorted(self.stall_histogram.items(),
                                    key=lambda kv: -kv[1]):
            lines.append(
                f"    {reason:<12} {count:5d}  ({count / total:.0%})"
            )
        return "\n".join(lines)


def diagnose_kernel(
    kernel: KernelSequence,
    core: CoreConfig,
    dtype_flops_per_cycle: float = 8.0,
) -> KernelDiagnosis:
    """Measure and explain one kernel on one core model."""
    analyzer = SteadyStateAnalyzer(core)
    state = analyzer.analyze(kernel)
    bounds = bound_analysis(kernel, core)
    binding = max(bounds, key=bounds.get)

    # steady-state stall attribution: schedule a long run, histogram the
    # tail (warm) iterations' reasons
    scheduler = OoOScheduler(core)
    iters = 24
    stream = list(kernel.prologue) + list(kernel.body) * iters
    result = scheduler.run(stream, record_ops=True)
    tail_start = len(kernel.prologue) + len(kernel.body) * (iters // 2)
    histogram: Dict[str, int] = {}
    for op in result.ops[tail_start:]:
        histogram[op.stall_reason] = histogram.get(op.stall_reason, 0) + 1

    return KernelDiagnosis(
        kernel_name=kernel.name,
        cycles_per_kstep=state.cycles_per_iter / kernel.unroll,
        efficiency=state.flops_per_cycle / dtype_flops_per_cycle,
        bounds=bounds,
        binding_resource=binding,
        stall_histogram=histogram,
    )


# ---------------------------------------------------------------------------
# execution-trace diagnosis (the GEMM-level counterpart of the kernel doctor)
# ---------------------------------------------------------------------------


def _trace_field(event, name: str):
    if isinstance(event, dict):
        return event.get(name)
    return getattr(event, name, None)


@dataclass
class TraceSummary:
    """Aggregate view of one engine event trace (``repro trace``).

    Built from the structured events the pricing engine emits (see
    :mod:`repro.plan.trace`); works on event objects or their JSON-dict
    forms, so it can digest a dumped trace file as well as a live
    :class:`~repro.plan.trace.RecordingTraceSink`.
    """

    events: int = 0
    #: cycles charged per timing bucket, in trace order
    bucket_cycles: Dict[str, float] = field(default_factory=dict)
    #: phase events charged per timing bucket
    bucket_events: Dict[str, int] = field(default_factory=dict)
    #: the most expensive single charges: (cycles, bucket, op label)
    top_charges: List[Tuple[float, str, str]] = field(default_factory=list)
    #: cache-model attribution summed over kernel phases
    stall_cycles: float = 0.0
    dram_bytes: float = 0.0
    l2_miss_lines: float = 0.0
    #: JIT kernel-cache behaviour over the traced execution
    kernel_requests: int = 0
    kernel_compiles: int = 0
    executed_flops: float = 0.0
    useful_flops: int = 0
    provenance: str = ""

    @property
    def total_cycles(self) -> float:
        """Sum of all charged cycles."""
        return sum(self.bucket_cycles.values())

    def render(self) -> str:
        """Human-readable multi-line trace digest."""
        total = self.total_cycles or 1.0
        lines = [f"trace: {self.events} event(s), "
                 f"{self.total_cycles:.0f} cycles charged"]
        if self.provenance:
            lines.append(f"  provenance   : {self.provenance}")
        for bucket, cycles in sorted(self.bucket_cycles.items(),
                                     key=lambda kv: -kv[1]):
            lines.append(
                f"  {bucket:<7} {cycles:14.1f} cycles "
                f"({cycles / total:6.1%}) over "
                f"{self.bucket_events.get(bucket, 0)} event(s)"
            )
        if self.stall_cycles or self.dram_bytes:
            lines.append(
                f"  cache model  : {self.stall_cycles:.1f} stall cycles, "
                f"{self.l2_miss_lines:.0f} L2-miss lines, "
                f"{self.dram_bytes:.0f} DRAM bytes"
            )
        if self.kernel_requests:
            lines.append(
                f"  kernel cache : {self.kernel_requests} request(s), "
                f"{self.kernel_compiles} compile(s)"
            )
        if self.useful_flops:
            lines.append(
                f"  flops        : {self.useful_flops} useful, "
                f"{self.executed_flops:.0f} executed"
            )
        if self.top_charges:
            lines.append("  hottest ops:")
            for cycles, bucket, label in self.top_charges:
                lines.append(
                    f"    {cycles:14.1f}  {bucket:<7} {label}"
                )
        return "\n".join(lines)


def summarize_trace(events, top: int = 5) -> TraceSummary:
    """Digest an engine event trace into a :class:`TraceSummary`."""
    summary = TraceSummary()
    charges: List[Tuple[float, str, str]] = []
    for event in events:
        summary.events += 1
        kind = _trace_field(event, "kind")
        detail = _trace_field(event, "detail") or {}
        if kind == "phase":
            bucket = _trace_field(event, "bucket")
            cycles = _trace_field(event, "cycles") or 0.0
            summary.bucket_cycles[bucket] = (
                summary.bucket_cycles.get(bucket, 0.0) + cycles
            )
            summary.bucket_events[bucket] = (
                summary.bucket_events.get(bucket, 0) + 1
            )
            charges.append(
                (cycles, bucket, str(_trace_field(event, "label")))
            )
        elif kind == "cache":
            summary.stall_cycles += detail.get("stall_cycles", 0.0)
            summary.dram_bytes += detail.get("dram_bytes", 0.0)
            summary.l2_miss_lines += detail.get("l2_miss_lines", 0.0)
        elif kind == "kernel_cache":
            summary.kernel_requests += int(detail.get("requests", 0))
            summary.kernel_compiles += int(detail.get("compiles", 0))
        elif kind == "flops":
            summary.executed_flops += detail.get("executed_flops", 0.0)
        elif kind == "plan":
            useful = detail.get("useful_flops")
            if useful is not None:
                summary.useful_flops += int(useful)
            summary.provenance = str(detail.get("provenance", "")) or (
                summary.provenance
            )
    charges.sort(key=lambda item: -item[0])
    summary.top_charges = charges[:top]
    return summary
