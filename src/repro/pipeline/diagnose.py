"""Kernel diagnosis: why is this kernel as fast (or slow) as it is?

Combines the steady-state measurement, the analytic resource bounds and
the scheduler's per-instruction stall attribution into one explanation —
the "kernel doctor" behind ``python -m repro kernel``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..isa.sequence import KernelSequence
from ..machine.config import CoreConfig
from .scheduler import OoOScheduler
from .steady import SteadyStateAnalyzer, bound_analysis


@dataclass(frozen=True)
class KernelDiagnosis:
    """One kernel's performance explanation on one core."""

    kernel_name: str
    cycles_per_kstep: float
    efficiency: float
    bounds: Dict[str, float]
    binding_resource: str
    stall_histogram: Dict[str, int]

    def render(self) -> str:
        """Human-readable multi-line explanation."""
        lines = [
            f"kernel {self.kernel_name}",
            f"  steady state : {self.cycles_per_kstep:.2f} cycles/k-step "
            f"({self.efficiency:.1%} of the FMA pipe)",
            f"  binding      : {self.binding_resource}",
            "  lower bounds (cycles/iteration):",
        ]
        for name, value in sorted(self.bounds.items(),
                                  key=lambda kv: -kv[1]):
            lines.append(f"    {name:<12} {value:8.2f}")
        total = sum(self.stall_histogram.values()) or 1
        lines.append("  issue-wait attribution (steady-state body):")
        for reason, count in sorted(self.stall_histogram.items(),
                                    key=lambda kv: -kv[1]):
            lines.append(
                f"    {reason:<12} {count:5d}  ({count / total:.0%})"
            )
        return "\n".join(lines)


def diagnose_kernel(
    kernel: KernelSequence,
    core: CoreConfig,
    dtype_flops_per_cycle: float = 8.0,
) -> KernelDiagnosis:
    """Measure and explain one kernel on one core model."""
    analyzer = SteadyStateAnalyzer(core)
    state = analyzer.analyze(kernel)
    bounds = bound_analysis(kernel, core)
    binding = max(bounds, key=bounds.get)

    # steady-state stall attribution: schedule a long run, histogram the
    # tail (warm) iterations' reasons
    scheduler = OoOScheduler(core)
    iters = 24
    stream = list(kernel.prologue) + list(kernel.body) * iters
    result = scheduler.run(stream, record_ops=True)
    tail_start = len(kernel.prologue) + len(kernel.body) * (iters // 2)
    histogram: Dict[str, int] = {}
    for op in result.ops[tail_start:]:
        histogram[op.stall_reason] = histogram.get(op.stall_reason, 0) + 1

    return KernelDiagnosis(
        kernel_name=kernel.name,
        cycles_per_kstep=state.cycles_per_iter / kernel.unroll,
        efficiency=state.flops_per_cycle / dtype_flops_per_cycle,
        bounds=bounds,
        binding_resource=binding,
        stall_histogram=histogram,
    )
