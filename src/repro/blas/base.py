"""Driver infrastructure shared by all library models.

A *driver* executes GEMM functionally (NumPy arithmetic on packed buffers,
bit-for-bit testable against ``A @ B``) while accounting cycles through the
pipeline/cache models.  Each library model configures the generic
Goto-structured driver differently — kernel catalog, blocking, packing,
edge policy, loop order — which is exactly the axis of variation the paper
studies.

Shared singletons: one :class:`MicroKernelGenerator` and one
:class:`SteadyStateAnalyzer` per core configuration, so kernel objects and
steady-state analyses are cached across drivers and experiments.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..caches.model import GebpCacheModel
from ..kernels.catalog import KernelCatalog, tile_plan
from ..kernels.generator import MicroKernelGenerator
from ..machine.config import MachineConfig
from ..pipeline.steady import SteadyStateAnalyzer
from ..timing.breakdown import GemmTiming
from ..util.errors import DriverError
from ..util.validation import check_positive_int

_GENERATOR = MicroKernelGenerator()

#: LRU bound of the shared-analyzer cache: analyzers are per *core
#: config*, and even machine-sweep experiments touch only a handful of
#: distinct cores at a time, so a small bound keeps sweeps from growing
#: the process footprint without ever evicting a hot entry.
ANALYZER_CACHE_MAX = 8

_ANALYZERS: "OrderedDict[str, SteadyStateAnalyzer]" = OrderedDict()
_ANALYZER_STATS = {"hits": 0, "misses": 0, "evictions": 0}
# guards the LRU bookkeeping: the serving layer's background tuning
# thread builds drivers (and thus analyzers) concurrently with the
# event loop, and move_to_end/popitem corrupt an OrderedDict racily
_ANALYZER_LOCK = threading.Lock()


def shared_generator() -> MicroKernelGenerator:
    """The process-wide kernel generator (kernel-object cache)."""
    return _GENERATOR


def shared_analyzer(machine: MachineConfig) -> SteadyStateAnalyzer:
    """The process-wide steady-state analyzer for ``machine``'s core.

    Keyed by the core's *value* (its dataclass repr), not object identity:
    id-based keys alias when a machine object is garbage collected and a
    different one reuses its address.  Bounded as a small LRU
    (:data:`ANALYZER_CACHE_MAX` entries) so machine sweeps over many core
    variants cannot grow the process unboundedly; see
    :func:`shared_analyzer_cache_info`.
    """
    key = repr(machine.core)
    with _ANALYZER_LOCK:
        analyzer = _ANALYZERS.get(key)
        if analyzer is not None:
            _ANALYZERS.move_to_end(key)
            _ANALYZER_STATS["hits"] += 1
            return analyzer
        _ANALYZER_STATS["misses"] += 1
        analyzer = SteadyStateAnalyzer(machine.core)
        _ANALYZERS[key] = analyzer
        while len(_ANALYZERS) > ANALYZER_CACHE_MAX:
            _ANALYZERS.popitem(last=False)
            _ANALYZER_STATS["evictions"] += 1
        return analyzer


def shared_analyzer_cache_info() -> Dict[str, int]:
    """Shared-analyzer cache statistics (like the other shared caches).

    Returns ``entries`` / ``maxsize`` / ``hits`` / ``misses`` /
    ``evictions`` counts for the process-wide analyzer LRU.
    """
    return {
        "entries": len(_ANALYZERS),
        "maxsize": ANALYZER_CACHE_MAX,
        "hits": _ANALYZER_STATS["hits"],
        "misses": _ANALYZER_STATS["misses"],
        "evictions": _ANALYZER_STATS["evictions"],
    }


#: The canonical ``GemmResult.info`` vocabulary every driver emits.
#:
#: ============== =====================================================
#: ``library``    library/driver name string (e.g. ``"openblas"``)
#: ``threads``    thread count the timing models (int, >= 1)
#: ``kernel_shape`` main micro-kernel tile as ``"MRxNR"`` (e.g. ``"8x12"``)
#: ``packed_b``   whether B was packed for the kernels (bool)
#: ============== =====================================================
#:
#: Driver-specific extras ride alongside under stable names:
#: ``execution_plan`` (the lowered :class:`~repro.plan.ir.ExecutionPlan`),
#: ``tile_plan`` (catalog tile statistics), ``blocking``, ``decision``,
#: ``jit_stats``, ``scheme``/``factorization``/``grid_chunks``/
#: ``chunks_nonzero``/``max_chunk`` (multithreaded schemes), ``ps``/
#: ``conversion_charged`` (BLASFEO), ``tuned_plan`` (the adaptive tuner).
GEMM_INFO_KEYS = ("library", "threads", "kernel_shape", "packed_b")


def result_info(
    library: str,
    threads: int,
    kernel_shape: str,
    packed_b: bool,
    **extras: object,
) -> Dict[str, object]:
    """Build a ``GemmResult.info`` dict with the canonical keys first."""
    info: Dict[str, object] = {
        "library": library,
        "threads": threads,
        "kernel_shape": kernel_shape,
        "packed_b": packed_b,
    }
    info.update(extras)
    return info


def quantize_penalty(x: float, step: float = 0.05) -> float:
    """Quantize cache penalties to keep steady-state memoization effective."""
    return round(x / step) * step


@dataclass(frozen=True)
class BlockingParams:
    """Goto blocking parameters (Layers 1-3)."""

    mc: int
    kc: int
    nc: int

    def __post_init__(self) -> None:
        check_positive_int(self.mc, "mc", DriverError)
        check_positive_int(self.kc, "kc", DriverError)
        check_positive_int(self.nc, "nc", DriverError)


def default_blocking(
    machine: MachineConfig, catalog: KernelCatalog, itemsize: int
) -> BlockingParams:
    """Classic cache-driven blocking:

    * ``kc`` — a kc x nr B sliver plus a kc x mr A sliver should occupy
      about half of L1;
    * ``mc`` — the packed mc x kc A block should occupy about half of L2;
    * ``nc`` — bounded by the packed-B workspace (no L3 on Phytium 2000+).
    """
    mr, nr = catalog.mr, catalog.nr
    l1 = machine.l1d.size_bytes
    l2 = machine.l2.size_bytes
    kc = max(32, (l1 // 2) // ((mr + nr) * itemsize))
    kc = min(kc, 512)
    mc = max(mr, ((l2 // 2) // (kc * itemsize) // mr) * mr)
    mc = min(mc, 512)
    nc = 4096
    return BlockingParams(mc=mc, kc=kc, nc=nc)


@dataclass
class GemmResult:
    """Output of one driver execution."""

    c: np.ndarray
    timing: GemmTiming
    info: Dict[str, object] = field(default_factory=dict)

    @property
    def gflops_per_core_cycle(self) -> float:
        """Useful flops per cycle (single-thread figure of merit)."""
        if self.timing.total_cycles <= 0:
            return 0.0
        return self.timing.useful_flops / self.timing.total_cycles


def validate_gemm_operands(
    a: np.ndarray, b: np.ndarray, c: Optional[np.ndarray]
) -> Tuple[int, int, int]:
    """Shape/dtype validation shared by all drivers; returns (m, n, k)."""
    if a.ndim != 2 or b.ndim != 2:
        raise DriverError(
            f"A and B must be 2-D, got {a.ndim}-D and {b.ndim}-D"
        )
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise DriverError(f"inner dimensions differ: A is {a.shape}, B is {b.shape}")
    if m == 0 or n == 0 or k == 0:
        raise DriverError("degenerate GEMM dimensions are not supported")
    if a.dtype != b.dtype:
        raise DriverError(f"dtype mismatch: {a.dtype} vs {b.dtype}")
    if a.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise DriverError(f"unsupported dtype {a.dtype}; use float32/float64")
    if c is not None:
        if c.shape != (m, n):
            raise DriverError(f"C shape {c.shape} != ({m}, {n})")
        if c.dtype != a.dtype:
            raise DriverError(f"C dtype {c.dtype} != {a.dtype}")
    return m, n, k


class KernelCostModel:
    """Prices the micro-kernel invocations of a GEBP call."""

    def __init__(self, machine: MachineConfig, dtype) -> None:
        self.machine = machine
        self.lanes = machine.core.simd_lanes(dtype)
        self.analyzer = shared_analyzer(machine)
        self.generator = shared_generator()
        self._sweep_memo: Dict[Tuple, Tuple[float, float]] = {}

    def gebp_kernel_cycles(
        self,
        catalog: KernelCatalog,
        mc: int,
        nc: int,
        kc: int,
        phase=None,
        cache: GebpCacheModel = None,
    ) -> Tuple[float, float]:
        """(cycles, executed_flops) for one (mc x nc x kc) GEBP call.

        Issue-limited cycles come from the steady-state scheduler; when a
        :class:`PhaseCacheCosts` and its cache model are supplied, the
        phase's unhidden memory stalls are added and the whole call is
        floored by the core's DRAM-bandwidth share (roofline composition,
        DESIGN.md §5).
        """
        cycles, executed = self._tile_sweep_cost(catalog, mc, nc, kc)
        if phase is not None:
            cycles += phase.stall_cycles
            if cache is not None:
                cycles = max(cycles, cache.dram_floor_cycles(phase))
        return cycles, executed

    def _tile_sweep_cost(
        self, catalog: KernelCatalog, mc: int, nc: int, kc: int
    ) -> Tuple[float, float]:
        """Issue-limited (cycles, executed_flops) of the tile sweep.

        Memoized per-instance and — when a persistent steady store is
        attached to the analyzer — across processes, so warm sweeps
        never regenerate or re-verify micro-kernels.  The stored value
        is the exact accumulated float (JSON round-trips bit-exactly),
        so gebp costs match the uncached path bit-for-bit.
        """
        local_key = (repr(catalog), mc, nc, kc)
        hit = self._sweep_memo.get(local_key)
        if hit is not None:
            return hit
        store = getattr(self.analyzer, "store", None)
        store_key = None
        if store is not None:
            from ..plan.fingerprint import model_token

            store_key = ("gebp_tile_sweep", model_token(self), local_key)
            stored = store.get_primitive(store_key)
            if stored is not None:
                self._sweep_memo[local_key] = stored
                return stored
        cycles = 0.0
        executed = 0.0
        for inv in tile_plan(catalog, mc, nc):
            kernel = self.generator.generate(inv.spec)
            state = self.analyzer.analyze(kernel)
            cycles += inv.calls * state.kernel_call_cycles(kc)
            executed += inv.calls * 2.0 * inv.padded_rows * inv.padded_cols * kc
        value = (cycles, executed)
        self._sweep_memo[local_key] = value
        if store is not None:
            store.put_primitive(store_key, value)
        return value

    def plan_stats(self, catalog: KernelCatalog, mc: int, nc: int) -> Dict[str, int]:
        """Diagnostic counts about a macro-tile plan."""
        plan = tile_plan(catalog, mc, nc)
        return {
            "invocation_kinds": len(plan),
            "edge_kinds": sum(1 for inv in plan if inv.is_edge),
            "calls": sum(inv.calls for inv in plan),
            "edge_calls": sum(inv.calls for inv in plan if inv.is_edge),
        }


def make_cache_model(
    machine: MachineConfig,
    active_l2_sharers: int = 1,
    numa_remote_fraction: float = 0.0,
    bandwidth_share: float = 0.0,
) -> GebpCacheModel:
    """Cache model bound to the current sharing/NUMA/bandwidth situation."""
    return GebpCacheModel(
        machine,
        active_l2_sharers=active_l2_sharers,
        numa_remote_fraction=numa_remote_fraction,
        bandwidth_share=bandwidth_share,
    )
