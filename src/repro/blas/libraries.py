"""Concrete library models: OpenBLAS, BLIS and Eigen drivers.

Each model instantiates the Goto-structured driver with the library's
kernel catalog (paper Table I) and storage-order-dependent packing
contiguity:

* **OpenBLAS** — column-major; 16x4 unroll-8 assembly kernel, power-of-two
  naive edge kernels.  Packing A (mr-row slivers out of contiguous columns)
  is the sequential walk; packing B (nr-column slivers interleaved row by
  row) is the strided, transpose-like walk — which is why Pack-B dominates
  the paper's breakdowns (Fig. 6, Table II).
* **BLIS** — column-major; 8x12 unroll-4 kernel, zero-padded edges; same
  packing walks as OpenBLAS.
* **Eigen** — row-major; compiled 12x4 kernel without FP contraction; the
  contiguity of the two packing walks is mirrored.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..kernels.catalog import blis_catalog, eigen_catalog, openblas_catalog
from ..machine.config import MachineConfig
from .base import BlockingParams
from .goto import GotoDriverConfig, GotoGemmDriver


def make_openblas(
    machine: MachineConfig,
    dtype=np.float32,
    blocking: Optional[BlockingParams] = None,
    warm: bool = True,
) -> GotoGemmDriver:
    """The OpenBLAS model."""
    lanes = machine.core.simd_lanes(dtype)
    return GotoGemmDriver(
        machine,
        openblas_catalog(lanes),
        GotoDriverConfig(
            name="openblas",
            pack_a_contiguous=True,
            pack_b_contiguous=False,
            warm=warm,
        ),
        blocking=blocking,
        dtype=dtype,
    )


def make_blis(
    machine: MachineConfig,
    dtype=np.float32,
    blocking: Optional[BlockingParams] = None,
    warm: bool = True,
) -> GotoGemmDriver:
    """The BLIS model."""
    lanes = machine.core.simd_lanes(dtype)
    return GotoGemmDriver(
        machine,
        blis_catalog(lanes),
        GotoDriverConfig(
            name="blis",
            pack_a_contiguous=True,
            pack_b_contiguous=False,
            warm=warm,
        ),
        blocking=blocking,
        dtype=dtype,
    )


def make_eigen(
    machine: MachineConfig,
    dtype=np.float32,
    blocking: Optional[BlockingParams] = None,
    warm: bool = True,
) -> GotoGemmDriver:
    """The Eigen model (row-major storage mirrors the packing walks)."""
    lanes = machine.core.simd_lanes(dtype)
    return GotoGemmDriver(
        machine,
        eigen_catalog(lanes),
        GotoDriverConfig(
            name="eigen",
            pack_a_contiguous=False,
            pack_b_contiguous=True,
            warm=warm,
            outer_loop="m",
        ),
        blocking=blocking,
        dtype=dtype,
    )
