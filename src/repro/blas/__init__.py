"""GEMM drivers modeling the four libraries the paper evaluates."""

from .base import (
    ANALYZER_CACHE_MAX,
    GEMM_INFO_KEYS,
    BlockingParams,
    GemmResult,
    KernelCostModel,
    default_blocking,
    make_cache_model,
    quantize_penalty,
    result_info,
    shared_analyzer,
    shared_analyzer_cache_info,
    shared_generator,
    validate_gemm_operands,
)
from .blasfeo import DEFAULT_PS, BlasfeoGemmDriver
from .goto import GotoDriverConfig, GotoGemmDriver
from .libraries import make_blis, make_eigen, make_openblas


def make_blasfeo(machine, dtype=None, include_conversion: bool = False,
                 warm: bool = True):
    """The BLASFEO model (convenience factory mirroring the others)."""
    import numpy as np

    return BlasfeoGemmDriver(
        machine,
        dtype=dtype if dtype is not None else np.float32,
        include_conversion=include_conversion,
        warm=warm,
    )


def make_driver(library: str, machine, dtype=None, **kwargs):
    """Factory by library name ('openblas', 'blis', 'blasfeo', 'eigen')."""
    import numpy as np

    dt = dtype if dtype is not None else np.float32
    factories = {
        "openblas": make_openblas,
        "blis": make_blis,
        "blasfeo": lambda m, dtype=dt, **kw: make_blasfeo(m, dtype=dtype, **kw),
        "eigen": make_eigen,
    }
    if library not in factories:
        raise ValueError(
            f"unknown library {library!r}; choose from {sorted(factories)}"
        )
    return factories[library](machine, dtype=dt, **kwargs)


__all__ = [
    "ANALYZER_CACHE_MAX",
    "GEMM_INFO_KEYS",
    "BlockingParams",
    "GemmResult",
    "KernelCostModel",
    "default_blocking",
    "make_cache_model",
    "quantize_penalty",
    "result_info",
    "shared_analyzer",
    "shared_analyzer_cache_info",
    "shared_generator",
    "validate_gemm_operands",
    "GotoGemmDriver",
    "GotoDriverConfig",
    "BlasfeoGemmDriver",
    "DEFAULT_PS",
    "make_openblas",
    "make_blis",
    "make_eigen",
    "make_blasfeo",
    "make_driver",
]
