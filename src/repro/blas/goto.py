"""The generic Goto-structured GEMM driver (paper Fig. 4, Layers 1-7).

OpenBLAS, BLIS and Eigen all instantiate this structure; they differ in the
kernel catalog (Table I), edge policy, blocking parameters and which packing
walk is contiguous (column-major vs row-major storage).  The driver:

* computes GEMM *functionally* from the packed buffers (so packing and edge
  handling are exercised for real and tested against NumPy), and
* accounts cycles phase by phase: pack-A, pack-B, micro-kernels — feeding
  the Fig. 5/6/9 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..kernels.catalog import KernelCatalog
from ..machine.config import MachineConfig
from ..packing.cost import PackingCostModel
from ..packing.pack import pack_a, pack_b
from ..timing.breakdown import GemmTiming
from ..util.errors import DriverError
from .base import (
    BlockingParams,
    GemmResult,
    KernelCostModel,
    default_blocking,
    make_cache_model,
    result_info,
    validate_gemm_operands,
)


@dataclass(frozen=True)
class GotoDriverConfig:
    """Per-library variation points of the Goto structure."""

    name: str
    #: packing walk contiguity in the library's native storage order
    pack_a_contiguous: bool = False
    pack_b_contiguous: bool = True
    #: measurement assumption: operands warm in L2 (paper averages 20 runs)
    warm: bool = True
    #: outermost partitioning dimension: 'n' (Goto/column-major: B packed
    #: in the outer loop) or 'm' (Eigen/row-major: A packed in the outer
    #: loop, B re-packed per M-block)
    outer_loop: str = "n"

    def __post_init__(self) -> None:
        if self.outer_loop not in ("n", "m"):
            raise DriverError(
                f"outer_loop must be 'n' or 'm', got {self.outer_loop!r}"
            )


class GotoGemmDriver:
    """Layers 1-7 with packing, for one library's kernel catalog."""

    def __init__(
        self,
        machine: MachineConfig,
        catalog: KernelCatalog,
        config: GotoDriverConfig,
        blocking: Optional[BlockingParams] = None,
        dtype=np.float32,
    ) -> None:
        self.machine = machine
        self.catalog = catalog
        self.config = config
        self.dtype = np.dtype(dtype)
        itemsize = self.dtype.itemsize
        self.blocking = blocking or default_blocking(machine, catalog, itemsize)
        self.cache_model = make_cache_model(machine)
        self.kernel_cost = KernelCostModel(machine, dtype)
        self.packing_cost = PackingCostModel(
            machine.core, self.cache_model,
            lanes=machine.core.simd_lanes(dtype),
        )

    @property
    def name(self) -> str:
        """Library name this driver models."""
        return self.config.name

    # -------------------------------------------------------------------

    def gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: Optional[np.ndarray] = None,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> GemmResult:
        """C = alpha * A @ B + beta * C with full phase accounting."""
        m, n, k = validate_gemm_operands(a, b, c)
        if a.dtype != self.dtype:
            raise DriverError(
                f"driver configured for {self.dtype}, operands are {a.dtype}"
            )
        out = np.zeros((m, n), dtype=self.dtype, order="F")
        if c is not None and beta != 0.0:
            out += beta * c

        blocking = self.blocking
        catalog = self.catalog

        def run_gebp(ii: int, mcb: int, jj: int, ncb: int,
                     kk: int, kcb: int) -> None:
            b_panel = b[kk : kk + kcb, jj : jj + ncb]
            packed_b = pack_b(np.ascontiguousarray(b_panel), catalog.nr)
            a_block = a[ii : ii + mcb, kk : kk + kcb]
            packed_a = pack_a(np.ascontiguousarray(a_block), catalog.mr)
            # GEBP computes from the packed (padded) buffers, exactly
            # like the modeled library
            c_pad = packed_a.data @ packed_b.data
            out[ii : ii + mcb, jj : jj + ncb] += alpha * c_pad[:mcb, :ncb]

        if self.config.outer_loop == "n":
            for jj in range(0, n, blocking.nc):
                ncb = min(blocking.nc, n - jj)
                for kk in range(0, k, blocking.kc):
                    kcb = min(blocking.kc, k - kk)
                    for ii in range(0, m, blocking.mc):
                        mcb = min(blocking.mc, m - ii)
                        run_gebp(ii, mcb, jj, ncb, kk, kcb)
        else:
            # Eigen order: M outermost (row-major blocking)
            for ii in range(0, m, blocking.mc):
                mcb = min(blocking.mc, m - ii)
                for kk in range(0, k, blocking.kc):
                    kcb = min(blocking.kc, k - kk)
                    for jj in range(0, n, blocking.nc):
                        ncb = min(blocking.nc, n - jj)
                        run_gebp(ii, mcb, jj, ncb, kk, kcb)

        plan = self.plan_gemm(m, n, k)
        timing = plan.price()
        info = result_info(
            library=self.name,
            threads=1,
            kernel_shape=f"{catalog.mr}x{catalog.nr}",
            packed_b=True,  # the Goto structure always packs both operands
            blocking=blocking,
            tile_plan=self.kernel_cost.plan_stats(
                catalog, min(m, blocking.mc), min(n, blocking.nc)
            ),
            execution_plan=plan,
        )
        return GemmResult(c=out, timing=timing, info=info)

    def plan_gemm(self, m: int, n: int, k: int, cache_model=None):
        """Lower one (m x n x k) execution to an ExecutionPlan.

        ``cache_model`` overrides the driver's single-core cache situation —
        the multithreaded executor passes one configured with L2 sharing and
        NUMA remote fractions to lower per-thread sub-problems.
        """
        from ..plan.lower import lower_goto

        return lower_goto(self, m, n, k, cache_model=cache_model)

    def cost_gemm(
        self,
        m: int,
        n: int,
        k: int,
        cache_model=None,
    ) -> GemmTiming:
        """Cycle accounting of one (m x n x k) execution, no data movement.

        Lowers to an :class:`~repro.plan.ir.ExecutionPlan` and prices it
        with the shared engine (pass a sink to
        :meth:`~repro.plan.ir.ExecutionPlan.price` for a trace).
        """
        return self.plan_gemm(m, n, k, cache_model=cache_model).price()

    # -------------------------------------------------------------------

    def _source_residency(
        self, m: int, n: int, k: int, itemsize: int, cache=None
    ) -> str:
        """Where the unpacked operands live when packing starts."""
        cache = cache if cache is not None else self.cache_model
        if not self.config.warm:
            return "mem"
        footprint = (m * k + k * n + m * n) * itemsize
        if footprint <= 0.75 * cache.effective_l2_bytes:
            return "l2"
        return "mem"

    def _packed_b_residency(
        self, kc: int, nc: int, itemsize: int, cache=None
    ) -> str:
        """Where the packed B panel lives during the kernel phase."""
        cache = cache if cache is not None else self.cache_model
        if kc * nc * itemsize <= 0.5 * cache.effective_l2_bytes:
            return "l2"
        return "mem"
