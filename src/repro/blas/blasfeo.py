"""The BLASFEO model: panel-major operands, no packing, no Layers 1-3.

BLASFEO (paper ref [26]) targets embedded-optimization-sized matrices: it
stores operands in the panel-major format (Fig. 3), so the micro-kernel's
input layout already exists in memory and GEMM needs *no packing step* —
the decisive advantage for SMM in the paper's Fig. 5.  Edge tiles are
zero-padded to the panel size.

The driver accepts dense operands and converts them to panel-major; the
conversion models the application storing its data in panel-major natively,
so by default it is *not* charged to GEMM (``include_conversion=False``,
matching how the paper — and BLASFEO's own benchmarks — measure).  Passing
``include_conversion=True`` charges it to ``other_cycles`` for the ablation
that asks whether the format pays off when conversion cannot be amortized.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..kernels.catalog import blasfeo_catalog
from ..machine.config import MachineConfig
from ..memlayout.panelmajor import to_panel_major
from ..packing.cost import PackingCostModel
from ..timing.breakdown import GemmTiming
from ..util.errors import DriverError
from .base import (
    GemmResult,
    KernelCostModel,
    make_cache_model,
    result_info,
    validate_gemm_operands,
)

#: BLASFEO's fixed panel size on 128-bit SIMD targets
DEFAULT_PS = 4


class BlasfeoGemmDriver:
    """Single-level SMM driver over panel-major operands."""

    def __init__(
        self,
        machine: MachineConfig,
        dtype=np.float32,
        ps: int = DEFAULT_PS,
        include_conversion: bool = False,
        warm: bool = True,
    ) -> None:
        self.machine = machine
        self.dtype = np.dtype(dtype)
        lanes = machine.core.simd_lanes(dtype)
        if ps % lanes != 0 and lanes % ps != 0:
            raise DriverError(
                f"panel size ps={ps} incompatible with {lanes}-lane SIMD"
            )
        self.ps = ps
        self.include_conversion = include_conversion
        self.warm = warm
        self.catalog = blasfeo_catalog(lanes)
        self.cache_model = make_cache_model(machine)
        self.kernel_cost = KernelCostModel(machine, dtype)
        self.packing_cost = PackingCostModel(
            machine.core, self.cache_model, lanes=lanes
        )

    @property
    def name(self) -> str:
        """Library name."""
        return "blasfeo"

    def gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: Optional[np.ndarray] = None,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> GemmResult:
        """C = alpha * A @ B + beta * C from panel-major operands."""
        m, n, k = validate_gemm_operands(a, b, c)
        if a.dtype != self.dtype:
            raise DriverError(
                f"driver configured for {self.dtype}, operands are {a.dtype}"
            )
        # format conversion (application-side; charged to the plan's
        # 'other' bucket only when include_conversion is set)
        pm_a = to_panel_major(np.asarray(a), self.ps)

        # ---- functional compute from the panel-major buffer ----
        # the zero-padded tail panel participates in the multiply exactly
        # like BLASFEO's padded kernels do
        c_pad = pm_a.data @ np.asarray(b)
        out = np.zeros((m, n), dtype=self.dtype, order="F")
        if c is not None and beta != 0.0:
            out += beta * c
        out += alpha * c_pad[:m, :]

        plan = self.plan_gemm(m, n, k)
        timing = plan.price()
        info = result_info(
            library=self.name,
            threads=1,
            kernel_shape=f"{self.catalog.mr}x{self.catalog.nr}",
            packed_b=False,  # panel-major operands need no packing step
            ps=self.ps,
            conversion_charged=self.include_conversion,
            tile_plan=self.kernel_cost.plan_stats(self.catalog, m, n),
            execution_plan=plan,
        )
        return GemmResult(c=out, timing=timing, info=info)

    def plan_gemm(self, m: int, n: int, k: int):
        """Lower one SMM call to an ExecutionPlan (flat kernel pass)."""
        from ..plan.lower import lower_blasfeo

        return lower_blasfeo(self, m, n, k)

    def cost_gemm(self, m: int, n: int, k: int) -> GemmTiming:
        """Cycle accounting only (no operands); mirrors :meth:`gemm`."""
        return self.plan_gemm(m, n, k).price()

    def _residency(self, m: int, n: int, k: int, itemsize: int) -> str:
        if not self.warm:
            return "mem"
        footprint = (m * k + k * n + m * n) * itemsize
        if footprint <= 0.75 * self.machine.l1d.size_bytes:
            return "l1"
        if footprint <= 0.75 * self.cache_model.effective_l2_bytes:
            return "l2"
        return "mem"
