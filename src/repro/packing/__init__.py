"""Packing: functional pack/unpack routines and their cost model."""

from .cost import PackingCostModel, pack_loop_kernel
from .pack import PackedBlock, a_sliver, b_sliver, pack_a, pack_b, unpack_a, unpack_b

__all__ = [
    "PackedBlock",
    "pack_a",
    "pack_b",
    "unpack_a",
    "unpack_b",
    "a_sliver",
    "b_sliver",
    "PackingCostModel",
    "pack_loop_kernel",
]
