"""Packing cost model, grounded in the pipeline scheduler.

A packing loop is itself a small kernel: load a run of source elements,
store them into the panel buffer, advance pointers.  Rather than assigning
per-element costs by hand, we synthesize the two archetypal packing loop
bodies and measure their steady-state throughput on the core model:

* ``contiguous`` — the walk follows source storage order: full vector loads
  and stores (e.g. packing B column slivers from column-major B);
* ``strided``   — the walk crosses the leading dimension: scalar gathers
  with address arithmetic feeding vector stores (e.g. packing A row slivers
  from column-major A).

Cache stalls (from :class:`repro.caches.GebpCacheModel`) enter through the
scheduler's ``extra_load_cycles``, the same composition used for compute
kernels.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..caches.model import GebpCacheModel
from ..isa.instructions import add_imm, branch_nz, ldr_q, ldr_s, str_q, subs_imm
from ..isa.registers import vreg, xreg
from ..isa.sequence import KernelSequence
from ..machine.config import CoreConfig
from ..pipeline.steady import SteadyStateAnalyzer
from ..util.errors import ConfigError
from ..util.validation import ceil_div, check_positive_int

_SRC, _DST, _CNT, _TMP = xreg(0), xreg(1), xreg(2), xreg(3)


def pack_loop_kernel(contiguous: bool, lanes: int = 4, unroll: int = 4) -> KernelSequence:
    """The packing loop body; meta['elements'] = elements moved per iteration."""
    check_positive_int(lanes, "lanes", ConfigError)
    check_positive_int(unroll, "unroll", ConfigError)
    body = []
    vec_bytes = 4 * lanes
    for u in range(unroll):
        v = vreg(u % 4)
        if contiguous:
            body.append(ldr_q(v, _SRC, post_inc=vec_bytes))
        else:
            # gather: one scalar load per lane, each behind its own address
            for lane in range(lanes):
                body.append(add_imm(_TMP, _SRC, lane))
                body.append(ldr_s(vreg(4 + lane % 4), _TMP))
        body.append(str_q(v, _DST, offset=u * vec_bytes))
    body.append(subs_imm(_CNT, _CNT, 1))
    body.append(branch_nz(_CNT))
    name = f"pack-{'seq' if contiguous else 'strided'}-l{lanes}-u{unroll}"
    return KernelSequence(
        name=name,
        prologue=(),
        body=tuple(body),
        epilogue=(),
        meta={"mr": 1, "nr": 1, "unroll": unroll, "elements": unroll * lanes},
    )


class PackingCostModel:
    """Cycles to pack an operand, given source layout and residency."""

    def __init__(
        self,
        core: CoreConfig,
        cache_model: GebpCacheModel,
        lanes: int = 4,
    ) -> None:
        self.core = core
        self.cache_model = cache_model
        self.lanes = lanes
        self._analyzer = SteadyStateAnalyzer(core)
        self._kernels: Dict[bool, KernelSequence] = {
            True: pack_loop_kernel(True, lanes),
            False: pack_loop_kernel(False, lanes),
        }
        # tuner sweeps price the same pack shapes hundreds of times; the
        # memo only covers calls against the default cache model (an
        # override's sharing/NUMA state is not part of the key)
        self._memo: Dict[Tuple, Tuple[float, int]] = {}

    def pack_cycles(
        self,
        rows: int,
        cols: int,
        itemsize: int,
        source_contiguous: bool,
        source_resident: str = "mem",
        padded_elements: int = 0,
        cache_model: GebpCacheModel = None,
    ) -> Tuple[float, int]:
        """(cycles, element_moves) for packing a rows x cols operand.

        ``padded_elements`` overrides the element count when the packing
        loop also writes zero fill (padding to full slivers).
        ``cache_model`` overrides the bound model (multithreaded runs pass
        one configured with L2 sharing / NUMA remote fractions).
        """
        if rows <= 0 or cols <= 0:
            return 0.0, 0
        elements = padded_elements or rows * cols
        key = None
        if cache_model is None:
            key = (rows, cols, itemsize, source_contiguous,
                   source_resident, elements)
            hit = self._memo.get(key)
            if hit is not None:
                return hit
        model = cache_model if cache_model is not None else self.cache_model
        phase = model.packing_phase(
            rows, cols, itemsize, source_contiguous, source_resident
        )
        kernel = self._kernels[source_contiguous]
        state = self._analyzer.analyze(kernel)
        iters = ceil_div(elements, int(kernel.meta["elements"]))
        # A packing loop has no dependent consumers: its loads overlap each
        # other completely in the scheduler, so memory time must be charged
        # at the stream level — loop throughput plus the unhidden part of
        # the line-fill traffic, floored by the core's share of the DRAM
        # channels (packing IS the bandwidth-heavy phase of GEMM).
        cycles = iters * state.cycles_per_iter + phase.stall_cycles
        cycles = max(cycles, model.dram_floor_cycles(phase))
        if key is not None:
            self._memo[key] = (cycles, elements)
        return cycles, elements
