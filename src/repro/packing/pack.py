"""Functional packing routines (paper Fig. 2).

Goto-style GEMM packs the current A block into row slivers of height ``mr``
(buffer A-tilde) and the current B panel into column slivers of width ``nr``
(buffer B-tilde), both zero-padded to full slivers.  These routines perform
the *actual* data movement with NumPy so the drivers compute GEMM from the
packed buffers exactly the way the libraries do; the element-move counts
feed the packing cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.errors import LayoutError
from ..util.validation import ceil_div, check_positive_int


@dataclass(frozen=True)
class PackedBlock:
    """A packed operand buffer plus its bookkeeping.

    ``data`` is the zero-padded buffer; ``rows``/``cols`` are the useful
    extents; ``sliver`` is the panel height (A) or width (B);
    ``element_moves`` counts the loads+stores the packing loop performed
    (padded extent, because the zero fill is real work too).
    """

    data: np.ndarray
    rows: int
    cols: int
    sliver: int
    element_moves: int

    @property
    def padded_rows(self) -> int:
        """Row extent of the buffer."""
        return int(self.data.shape[0])

    @property
    def padded_cols(self) -> int:
        """Column extent of the buffer."""
        return int(self.data.shape[1])

    @property
    def nbytes(self) -> int:
        """Buffer size in bytes."""
        return int(self.data.nbytes)


def pack_a(block: np.ndarray, mr: int) -> PackedBlock:
    """Pack an (mc x kc) A block into mr-row slivers (zero-padded).

    The returned buffer has shape (ceil(mc/mr)*mr, kc); sliver ``i`` is
    ``data[i*mr:(i+1)*mr, :]`` and is contiguous in the real layout (here
    contiguity is modeled, correctness is exact).
    """
    check_positive_int(mr, "mr", LayoutError)
    if block.ndim != 2:
        raise LayoutError(f"A block must be 2-D, got ndim={block.ndim}")
    mc, kc = block.shape
    padded = ceil_div(max(mc, 1), mr) * mr
    data = np.zeros((padded, kc), dtype=block.dtype)
    data[:mc, :] = block
    return PackedBlock(
        data=data, rows=mc, cols=kc, sliver=mr, element_moves=padded * kc
    )


def pack_b(panel: np.ndarray, nr: int) -> PackedBlock:
    """Pack a (kc x nc) B panel into nr-column slivers (zero-padded)."""
    check_positive_int(nr, "nr", LayoutError)
    if panel.ndim != 2:
        raise LayoutError(f"B panel must be 2-D, got ndim={panel.ndim}")
    kc, nc = panel.shape
    padded = ceil_div(max(nc, 1), nr) * nr
    data = np.zeros((kc, padded), dtype=panel.dtype)
    data[:, :nc] = panel
    return PackedBlock(
        data=data, rows=kc, cols=nc, sliver=nr, element_moves=kc * padded
    )


def unpack_a(packed: PackedBlock) -> np.ndarray:
    """Recover the original A block (drops padding)."""
    return packed.data[: packed.rows, :].copy()


def unpack_b(packed: PackedBlock) -> np.ndarray:
    """Recover the original B panel (drops padding)."""
    return packed.data[:, : packed.cols].copy()


def a_sliver(packed: PackedBlock, index: int) -> np.ndarray:
    """The mr-row sliver ``index`` of a packed A buffer."""
    mr = packed.sliver
    n = packed.padded_rows // mr
    if not 0 <= index < n:
        raise LayoutError(f"A sliver {index} out of range [0, {n})")
    return packed.data[index * mr : (index + 1) * mr, :]


def b_sliver(packed: PackedBlock, index: int) -> np.ndarray:
    """The nr-column sliver ``index`` of a packed B buffer."""
    nr = packed.sliver
    n = packed.padded_cols // nr
    if not 0 <= index < n:
        raise LayoutError(f"B sliver {index} out of range [0, {n})")
    return packed.data[:, index * nr : (index + 1) * nr]
