"""GEMM timing results: the phase breakdown every experiment reports.

The paper decomposes execution into kernel / pack-A / pack-B / sync (its
Fig. 6 and Table II); :class:`GemmTiming` carries exactly those buckets in
cycles, converts to GFLOPS / efficiency against a machine peak, and renders
the percentage rows of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..machine.config import MachineConfig
from ..util.errors import ConfigError
from ..util.units import cycles_to_seconds, gflops


@dataclass
class GemmTiming:
    """Cycle breakdown of one GEMM execution (per the critical path)."""

    kernel_cycles: float = 0.0
    pack_a_cycles: float = 0.0
    pack_b_cycles: float = 0.0
    sync_cycles: float = 0.0
    other_cycles: float = 0.0
    #: useful flops of the problem (2*M*N*K)
    useful_flops: int = 0
    #: flops actually executed by kernels (>= useful under padding)
    executed_flops: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in ("kernel_cycles", "pack_a_cycles", "pack_b_cycles",
                     "sync_cycles", "other_cycles"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")

    @property
    def total_cycles(self) -> float:
        """Critical-path cycles."""
        return (
            self.kernel_cycles
            + self.pack_a_cycles
            + self.pack_b_cycles
            + self.sync_cycles
            + self.other_cycles
        )

    @property
    def packing_cycles(self) -> float:
        """Combined packing cycles."""
        return self.pack_a_cycles + self.pack_b_cycles

    def fraction(self, phase: str) -> float:
        """Share of total cycles spent in ``phase`` (e.g. 'pack_b')."""
        total = self.total_cycles
        if total <= 0:
            return 0.0
        value = getattr(self, f"{phase}_cycles")
        return value / total

    def seconds(self, machine: MachineConfig) -> float:
        """Wall-clock seconds on ``machine``."""
        return cycles_to_seconds(self.total_cycles, machine.core.freq_hz)

    def gflops(self, machine: MachineConfig) -> float:
        """Achieved useful GFLOPS."""
        secs = self.seconds(machine)
        if secs <= 0 or self.useful_flops <= 0:
            return 0.0
        return gflops(self.useful_flops, secs)

    def efficiency(self, machine: MachineConfig, dtype, n_cores: int = 1) -> float:
        """Fraction of the ``n_cores`` aggregate peak achieved."""
        peak = machine.peak_gflops(dtype, n_cores)
        if peak <= 0:
            return 0.0
        return self.gflops(machine) / peak

    def kernel_efficiency(self, machine: MachineConfig, dtype,
                          n_cores: int = 1) -> float:
        """Efficiency of the kernel phase alone (paper Table II last column).

        Useful flops over kernel cycles only — packing/sync excluded, and
        padded (wasted) kernel work shows up as lost efficiency.
        """
        if self.kernel_cycles <= 0 or self.useful_flops <= 0:
            return 0.0
        flops_per_cycle = self.useful_flops / self.kernel_cycles / n_cores
        return flops_per_cycle / machine.core.flops_per_cycle(dtype)

    @property
    def padding_waste(self) -> float:
        """Fraction of executed kernel flops that were padding."""
        if self.executed_flops <= 0:
            return 0.0
        return max(0.0, 1.0 - self.useful_flops / self.executed_flops)

    def merged_with(self, other: "GemmTiming") -> "GemmTiming":
        """Sum of two breakdowns (e.g. batched GEMM accounting)."""
        extra = dict(self.extra)
        for key, val in other.extra.items():
            extra[key] = extra.get(key, 0.0) + val
        return GemmTiming(
            kernel_cycles=self.kernel_cycles + other.kernel_cycles,
            pack_a_cycles=self.pack_a_cycles + other.pack_a_cycles,
            pack_b_cycles=self.pack_b_cycles + other.pack_b_cycles,
            sync_cycles=self.sync_cycles + other.sync_cycles,
            other_cycles=self.other_cycles + other.other_cycles,
            useful_flops=self.useful_flops + other.useful_flops,
            executed_flops=self.executed_flops + other.executed_flops,
            extra=extra,
        )

    def as_dict(self) -> Dict[str, float]:
        """JSON-serializable field dump (tuning-cache entry format)."""
        out: Dict[str, float] = {
            "kernel_cycles": self.kernel_cycles,
            "pack_a_cycles": self.pack_a_cycles,
            "pack_b_cycles": self.pack_b_cycles,
            "sync_cycles": self.sync_cycles,
            "other_cycles": self.other_cycles,
            "useful_flops": self.useful_flops,
            "executed_flops": self.executed_flops,
        }
        if self.extra:
            out["extra"] = dict(self.extra)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "GemmTiming":
        """Rebuild a breakdown from :meth:`as_dict` output."""
        return cls(
            kernel_cycles=float(data.get("kernel_cycles", 0.0)),
            pack_a_cycles=float(data.get("pack_a_cycles", 0.0)),
            pack_b_cycles=float(data.get("pack_b_cycles", 0.0)),
            sync_cycles=float(data.get("sync_cycles", 0.0)),
            other_cycles=float(data.get("other_cycles", 0.0)),
            useful_flops=int(data.get("useful_flops", 0)),
            executed_flops=float(data.get("executed_flops", 0.0)),
            extra=dict(data.get("extra", {})),
        )

    def breakdown_percent(self) -> Dict[str, float]:
        """Phase shares in percent (the Table II row format)."""
        total = self.total_cycles
        if total <= 0:
            return {"kernel": 0.0, "pack_a": 0.0, "pack_b": 0.0,
                    "sync": 0.0, "other": 0.0}
        return {
            "kernel": 100.0 * self.kernel_cycles / total,
            "pack_a": 100.0 * self.pack_a_cycles / total,
            "pack_b": 100.0 * self.pack_b_cycles / total,
            "sync": 100.0 * self.sync_cycles / total,
            "other": 100.0 * self.other_cycles / total,
        }


def _event_field(event, name: str):
    """Read ``name`` off a trace event or its JSON-dict form."""
    if isinstance(event, dict):
        return event.get(name)
    return getattr(event, name, None)


def timing_from_trace(events) -> GemmTiming:
    """Rebuild a :class:`GemmTiming` from an engine event trace.

    Accepts either :class:`~repro.plan.trace.TraceEvent` objects (e.g. a
    :class:`~repro.plan.trace.RecordingTraceSink`) or their ``to_dict()``
    JSON forms, so a dumped trace file reconstructs the same breakdown.
    Phase events are summed *in trace order* per bucket — the same
    accumulation order the engine used — so the result is bit-for-bit
    the timing the engine priced alongside the trace.
    """
    timing = GemmTiming()
    for event in events:
        kind = _event_field(event, "kind")
        if kind == "phase":
            bucket = _event_field(event, "bucket")
            cycles = _event_field(event, "cycles")
            if bucket is None or cycles is None:
                continue
            setattr(timing, f"{bucket}_cycles",
                    getattr(timing, f"{bucket}_cycles") + cycles)
        elif kind == "flops":
            detail = _event_field(event, "detail") or {}
            timing.executed_flops += detail.get("executed_flops", 0.0)
        elif kind == "plan":
            # batch traces carry one plan event per sub-problem (the root
            # merge plan itself contributes zero), so useful flops sum
            detail = _event_field(event, "detail") or {}
            useful = detail.get("useful_flops")
            if useful is not None:
                timing.useful_flops += int(useful)
    return timing


