"""The paper's analytic models (Sec. III-A, Eq. 1-3).

* ``num_load``  (Eq. 1): load instructions to pack A and B;
* ``num_fma``   (Eq. 2): FMA instructions for the multiplication;
* ``p2c``       (Eq. 3): the packing-to-computing ratio, the paper's
  headline statement that packing overhead is K-independent and blows up
  when M or N is small.

The paper states Eq. 3 as ``P2C = (M+N)/(2*M*N)``; :func:`p2c_derived`
keeps the un-simplified Eq.1/Eq.2 quotient for cross-checking.  Both are
monotonically decreasing in M and N and independent of K, which is the
property the experiments rely on.
"""

from __future__ import annotations

import numpy as np

from ..machine.config import CoreConfig
from ..util.errors import ConfigError
from ..util.validation import check_positive_int


def load_width(core: CoreConfig, dtype) -> int:
    """Elements per load request (vector register width / element size)."""
    return core.simd_lanes(dtype)


def fma_width(core: CoreConfig, dtype) -> int:
    """Flops per FMA instruction (2 x lanes), the paper's ``FMA_width``."""
    return 2 * core.simd_lanes(dtype)


def num_load(m: int, n: int, k: int, load_width_elems: int = 4) -> float:
    """Eq. 1: load instructions to pack both operands.

    The numerator counts every element of A (m x k) and B (k x n) once.
    (The paper's text prints ``M*N + K*N``; the stated intent — "the total
    number of data elements for the matrix A and B" — is ``M*K + K*N``,
    which is what we compute.)
    """
    _check_dims(m, n, k)
    check_positive_int(load_width_elems, "load_width_elems")
    return (m * k + k * n) / load_width_elems


def num_fma(m: int, n: int, k: int, fma_width_flops: int = 8) -> float:
    """Eq. 2: FMA instructions for the m x n x k multiplication."""
    _check_dims(m, n, k)
    check_positive_int(fma_width_flops, "fma_width_flops")
    return 2.0 * m * n * k / fma_width_flops


def p2c(m: int, n: int) -> float:
    """Eq. 3 as printed in the paper: P2C = (M+N) / (2*M*N).

    Smaller is better (packing amortized by compute); independent of K.
    """
    _check_dims(m, n, 1)
    return (m + n) / (2.0 * m * n)


def p2c_derived(
    m: int, n: int, k: int, load_width_elems: int = 4, fma_width_flops: int = 8
) -> float:
    """Eq.1 / Eq.2 without the paper's simplification.

    Equals ``fma_width/(2*load_width) * (1/n + 1/m)``; K cancels, matching
    the paper's central claim.
    """
    return num_load(m, n, k, load_width_elems) / num_fma(m, n, k, fma_width_flops)


def gemm_flops(m: int, n: int, k: int) -> int:
    """Useful floating-point operations of one GEMM (multiply+add)."""
    _check_dims(m, n, k)
    return 2 * m * n * k


def arithmetic_intensity(m: int, n: int, k: int, itemsize: int = 4) -> float:
    """Flops per byte touched (A, B read once; C read+written once)."""
    _check_dims(m, n, k)
    bytes_touched = itemsize * (m * k + k * n + 2 * m * n)
    return gemm_flops(m, n, k) / bytes_touched


def _check_dims(m: int, n: int, k: int) -> None:
    for name, val in (("m", m), ("n", n), ("k", k)):
        if not isinstance(val, (int, np.integer)) or val <= 0:
            raise ConfigError(f"{name} must be a positive int, got {val!r}")
