"""Roofline bounds: global sanity rails for every timing the model emits.

For a GEMM of shape (m, n, k) on one core, no implementation can exceed

    min( peak_flops,  arithmetic_intensity * memory_bandwidth )

where the intensity uses compulsory traffic (A, B read once, C read and
written once).  Every driver's reported GFLOPS must sit on or under this
roof — an end-to-end invariant the property tests sweep.  The module also
classifies shapes as compute- vs memory-bound, which the packing-optional
driver's decisions can be sanity-checked against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.config import MachineConfig
from ..util.errors import ConfigError
from .models import arithmetic_intensity, gemm_flops


@dataclass(frozen=True)
class RooflinePoint:
    """Roofline evaluation of one GEMM shape on one machine."""

    m: int
    n: int
    k: int
    intensity_flops_per_byte: float
    compute_roof_gflops: float
    memory_roof_gflops: float

    @property
    def roof_gflops(self) -> float:
        """The binding roof."""
        return min(self.compute_roof_gflops, self.memory_roof_gflops)

    @property
    def compute_bound(self) -> bool:
        """True when the compute roof binds."""
        return self.compute_roof_gflops <= self.memory_roof_gflops

    @property
    def max_efficiency(self) -> float:
        """Upper bound on fraction-of-peak any implementation can reach."""
        if self.compute_roof_gflops <= 0:
            return 0.0
        return self.roof_gflops / self.compute_roof_gflops


def roofline(
    machine: MachineConfig,
    m: int,
    n: int,
    k: int,
    dtype=np.float32,
    n_cores: int = 1,
    cold: bool = False,
) -> RooflinePoint:
    """Roofline bound for one shape.

    ``cold=False`` (the paper's warm-measurement setting) uses the L2
    bandwidth proxy — warm operands stream from cache, effectively
    unbounded here, so only the compute roof binds.  ``cold=True`` bounds
    by the DRAM channels available to ``n_cores`` compactly placed cores.
    """
    if n_cores < 1 or n_cores > machine.n_cores:
        raise ConfigError(
            f"n_cores must be in [1, {machine.n_cores}], got {n_cores}"
        )
    itemsize = int(np.dtype(dtype).itemsize)
    intensity = arithmetic_intensity(m, n, k, itemsize)
    compute = machine.peak_gflops(dtype, n_cores)
    if cold:
        panels = -(-n_cores // machine.numa.cores_per_panel)
        bytes_per_cycle = panels * machine.numa.dram_bytes_per_cycle
        bw_gbytes = bytes_per_cycle * machine.core.freq_hz / 1e9
        memory = intensity * bw_gbytes
    else:
        memory = float("inf")
    return RooflinePoint(
        m=m, n=n, k=k,
        intensity_flops_per_byte=intensity,
        compute_roof_gflops=compute,
        memory_roof_gflops=memory,
    )


def respects_roofline(
    timing,
    machine: MachineConfig,
    m: int,
    n: int,
    k: int,
    dtype=np.float32,
    n_cores: int = 1,
    tolerance: float = 1.005,
) -> bool:
    """True when ``timing`` stays on or under the (warm) roofline."""
    point = roofline(machine, m, n, k, dtype, n_cores, cold=False)
    achieved = timing.gflops(machine)
    expected_flops = gemm_flops(m, n, k)
    if timing.useful_flops != expected_flops:
        raise ConfigError(
            f"timing reports {timing.useful_flops} useful flops, "
            f"shape implies {expected_flops}"
        )
    return achieved <= point.roof_gflops * tolerance
