"""Analytic timing models and the GEMM phase-breakdown result type."""

from .breakdown import GemmTiming, timing_from_trace
from .roofline import RooflinePoint, respects_roofline, roofline
from .models import (
    arithmetic_intensity,
    fma_width,
    gemm_flops,
    load_width,
    num_fma,
    num_load,
    p2c,
    p2c_derived,
)

__all__ = [
    "GemmTiming",
    "timing_from_trace",
    "RooflinePoint",
    "roofline",
    "respects_roofline",
    "num_load",
    "num_fma",
    "p2c",
    "p2c_derived",
    "gemm_flops",
    "arithmetic_intensity",
    "load_width",
    "fma_width",
]
